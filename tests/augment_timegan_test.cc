// TimeGAN tests run with a deliberately tiny schedule: the goal is to
// verify the machinery (three-phase training, shapes, scaling, per-class
// caching), not sample quality at paper scale.
#include <cmath>

#include <gtest/gtest.h>

#include "augment/timegan.h"
#include "data/synthetic.h"

namespace tsaug::augment {
namespace {

TimeGanConfig TinyConfig() {
  TimeGanConfig config;
  config.hidden_dim = 6;
  config.num_layers = 1;
  config.embedding_iterations = 40;
  config.supervised_iterations = 30;
  config.joint_iterations = 15;
  config.batch_size = 8;
  config.max_sequence_length = 12;
  config.seed = 3;
  return config;
}

std::vector<core::TimeSeries> SineFamily(int count, int length, int channels,
                                         std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<core::TimeSeries> out;
  for (int i = 0; i < count; ++i) {
    core::TimeSeries s(channels, length);
    const double phase = rng.Uniform(0.0, 3.14);
    for (int c = 0; c < channels; ++c) {
      for (int t = 0; t < length; ++t) {
        s.at(c, t) = std::sin(0.5 * t + phase + c) + rng.Normal(0, 0.05);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(TimeGan, PaperScaleConfigMatchesPaper) {
  const TimeGanConfig config = PaperScaleTimeGanConfig();
  EXPECT_EQ(config.embedding_iterations, 2500);
  EXPECT_EQ(config.supervised_iterations, 2500);
  EXPECT_EQ(config.joint_iterations, 1000);
  EXPECT_EQ(config.hidden_dim, 10);
  EXPECT_DOUBLE_EQ(config.gamma, 1.0);
  EXPECT_DOUBLE_EQ(config.learning_rate, 5e-4);
  EXPECT_EQ(config.batch_size, 32);
}

TEST(TimeGan, FitsAndSamplesCorrectShapes) {
  TimeGan gan(TinyConfig());
  gan.Fit(SineFamily(12, 12, 2, 1));
  ASSERT_TRUE(gan.fitted());
  core::Rng rng(2);
  const auto samples = gan.Sample(5, rng);
  ASSERT_EQ(samples.size(), 5u);
  for (const core::TimeSeries& s : samples) {
    EXPECT_EQ(s.num_channels(), 2);
    EXPECT_EQ(s.length(), 12);
    for (double v : s.values()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(TimeGan, SamplesWithinDataRange) {
  // Sigmoid output + inverse min-max scaling bounds samples to the
  // training data's per-feature range.
  TimeGan gan(TinyConfig());
  const auto train = SineFamily(10, 12, 1, 3);
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& s : train) {
    for (double v : s.values()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  gan.Fit(train);
  core::Rng rng(4);
  for (const core::TimeSeries& s : gan.Sample(8, rng)) {
    for (double v : s.values()) {
      EXPECT_GE(v, lo - 1e-9);
      EXPECT_LE(v, hi + 1e-9);
    }
  }
}

TEST(TimeGan, ReconstructionLossDecreases) {
  // Phase 1 on an easy dataset should reach a low reconstruction loss.
  TimeGanConfig config = TinyConfig();
  config.embedding_iterations = 400;
  config.learning_rate = 5e-3;  // tiny net, short schedule: faster rate
  TimeGan gan(config);
  gan.Fit(SineFamily(16, 12, 1, 5));
  // Loss is 10*sqrt(MSE) on [0,1]-scaled data; untrained is ~3-5.
  EXPECT_LT(gan.diagnostics().reconstruction_loss, 2.0);
}

TEST(TimeGan, LongSeriesCappedToMaxSequenceLength) {
  TimeGanConfig config = TinyConfig();
  config.max_sequence_length = 10;
  TimeGan gan(config);
  gan.Fit(SineFamily(6, 40, 1, 6));
  core::Rng rng(7);
  // Raw samples come out at the training length.
  EXPECT_EQ(gan.Sample(1, rng)[0].length(), 10);
}

TEST(TimeGanAugmenter, GeneratesAtDatasetLengthAndCachesPerClass) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {8, 4};
  spec.test_counts = {2, 2};
  spec.num_channels = 2;
  spec.length = 20;
  spec.seed = 8;
  const core::Dataset train = data::MakeSynthetic(spec).train;

  TimeGanAugmenter augmenter(TinyConfig());
  core::Rng rng(9);
  const auto first = augmenter.Generate(train, 1, 4, rng);
  ASSERT_EQ(first.size(), 4u);
  for (const core::TimeSeries& s : first) {
    EXPECT_EQ(s.length(), 20);  // resampled back to dataset length
    EXPECT_EQ(s.num_channels(), 2);
  }
  // Second call reuses the cached per-class model (fast path).
  const auto second = augmenter.Generate(train, 1, 2, rng);
  EXPECT_EQ(second.size(), 2u);
}

}  // namespace
}  // namespace tsaug::augment
