#include "classify/boss.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/synthetic.h"

namespace tsaug::classify {
namespace {

std::vector<double> Tone(int n, double freq, double phase = 0.0) {
  std::vector<double> x(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) x[static_cast<size_t>(t)] = std::sin(freq * t + phase);
  return x;
}

TEST(SfaTransform, WordCountMatchesPositions) {
  SfaTransform sfa(8, 4, 4);
  const std::vector<double> signal = Tone(40, 0.5);
  sfa.Fit({signal});
  EXPECT_EQ(sfa.Words(signal).size(), 40u - 8 + 1);
}

TEST(SfaTransform, WordsWithinAlphabetRange) {
  SfaTransform sfa(8, 4, 4);
  const std::vector<double> signal = Tone(60, 0.8);
  sfa.Fit({signal});
  const std::uint32_t max_word = 4 * 4 * 4 * 4;  // alphabet^word_length
  for (std::uint32_t word : sfa.Words(signal)) EXPECT_LT(word, max_word);
}

TEST(SfaTransform, MeanNormalizationIgnoresOffset) {
  SfaTransform sfa(8, 4, 4);
  std::vector<double> base = Tone(40, 0.5);
  sfa.Fit({base});
  std::vector<double> shifted = base;
  for (double& v : shifted) v += 100.0;
  // The window-mean subtraction cancels the offset; features agree up to
  // floating-point roundoff (words could still flip at exact bin edges,
  // so compare the features themselves).
  for (int start = 0; start <= 40 - 8; ++start) {
    const auto a = sfa.WindowFeatures(base, start);
    const auto b = sfa.WindowFeatures(shifted, start);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], b[k], 1e-9);
  }
}

TEST(SfaTransform, DifferentFrequenciesGetDifferentVocabularies) {
  const std::vector<double> slow = Tone(80, 0.2);
  const std::vector<double> fast = Tone(80, 1.6);
  SfaTransform sfa(16, 4, 4);
  sfa.Fit({slow, fast});
  const auto slow_words = sfa.Words(slow);
  const auto fast_words = sfa.Words(fast);
  std::set<std::uint32_t> slow_set(slow_words.begin(), slow_words.end());
  std::set<std::uint32_t> fast_set(fast_words.begin(), fast_words.end());
  std::vector<std::uint32_t> common;
  std::set_intersection(slow_set.begin(), slow_set.end(), fast_set.begin(),
                        fast_set.end(), std::back_inserter(common));
  // Vocabularies overlap far less than they agree internally.
  EXPECT_LT(common.size(), std::min(slow_set.size(), fast_set.size()));
}

TEST(SfaTransform, EquiDepthBinsBalanceSymbols) {
  // With many windows, each symbol of the first coefficient should get a
  // roughly equal share (equi-depth binning).
  core::Rng rng(1);
  std::vector<double> noise(600);
  for (double& v : noise) v = rng.Normal();
  SfaTransform sfa(8, 1, 4);
  sfa.Fit({noise});
  const auto words = sfa.Words(noise);
  std::vector<int> counts(4, 0);
  for (std::uint32_t w : words) ++counts[w];
  for (int c : counts) {
    EXPECT_GT(c, static_cast<int>(words.size()) / 8);
  }
}

TEST(BossClassifier, HistogramUsesNumerosityReduction) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {4, 4};
  spec.test_counts = {1, 1};
  spec.num_channels = 1;
  spec.length = 32;
  spec.seed = 2;
  const core::Dataset train = data::MakeSynthetic(spec).train;
  BossClassifier boss(8, 4, 4);
  boss.Fit(train);
  const auto histogram = boss.Histogram(train.series(0));
  int total = 0;
  for (const auto& [word, count] : histogram) total += count;
  // Numerosity reduction: strictly fewer counted words than positions.
  EXPECT_LE(total, 32 - 8 + 1);
  EXPECT_GT(total, 0);
}

TEST(BossClassifier, LearnsSeparableClasses) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {14, 14};
  spec.test_counts = {8, 8};
  spec.num_channels = 2;
  spec.length = 48;
  spec.class_separation = 1.5;
  spec.seed = 3;
  const data::TrainTest data = data::MakeSynthetic(spec);
  BossClassifier boss(12, 4, 4);
  boss.Fit(data.train);
  EXPECT_GE(boss.Score(data.test), 0.7);
}

TEST(BossClassifier, MulticlassRuns) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.train_counts = {8, 8, 8};
  spec.test_counts = {3, 3, 3};
  spec.num_channels = 2;
  spec.length = 32;
  spec.seed = 4;
  const data::TrainTest data = data::MakeSynthetic(spec);
  BossClassifier boss;
  boss.Fit(data.train);
  const std::vector<int> predictions = boss.Predict(data.test);
  EXPECT_EQ(predictions.size(), 9u);
  for (int p : predictions) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(BossClassifier, ShortSeriesClampWindow) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {4, 4};
  spec.test_counts = {2, 2};
  spec.num_channels = 1;
  spec.length = 8;  // PenDigits-scale
  spec.seed = 5;
  const data::TrainTest data = data::MakeSynthetic(spec);
  BossClassifier boss(16, 4, 4);  // window larger than the series
  boss.Fit(data.train);
  EXPECT_EQ(boss.Predict(data.test).size(), 4u);
}

}  // namespace
}  // namespace tsaug::classify
