// BatchingQueue (serve/batching.h): the policy core CutBatch(now, flush)
// driven with a fake clock — linger expiry, max-batch cuts, deadline
// expiry before dispatch, admission control — all with zero threads and
// zero sleeps; then a multi-threaded submit/cancel hammer over the
// blocking WaitBatch shell (ctest label "parallel", so the TSan leg
// race-checks it).
#include "serve/batching.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/rng.h"
#include "core/status.h"
#include "gtest/gtest.h"

namespace tsaug::serve {
namespace {

BatchingPolicy SmallPolicy() {
  BatchingPolicy policy;
  policy.max_batch = 4;
  policy.max_linger_nanos = 1000;
  policy.max_queue_depth = 8;
  return policy;
}

std::shared_ptr<int> Work(int value) { return std::make_shared<int>(value); }

TEST(ServeBatchingTest, LingerHoldsThenCuts) {
  std::int64_t now = 0;
  BatchingQueue queue(SmallPolicy(), [&now] { return now; });
  ASSERT_TRUE(queue.Submit(core::StopToken(), Work(1)).ok());
  now = 500;
  ASSERT_TRUE(queue.Submit(core::StopToken(), Work(2)).ok());

  // Below the linger horizon of the OLDEST request: no cut.
  EXPECT_TRUE(queue.CutBatch(/*now_nanos=*/999, /*flush=*/false).Empty());
  EXPECT_EQ(queue.depth(), 2);

  // At exactly oldest + linger the batch is due, and carries both.
  BatchCut cut = queue.CutBatch(/*now_nanos=*/1000, /*flush=*/false);
  ASSERT_EQ(cut.batch.size(), 2u);
  EXPECT_TRUE(cut.expired.empty());
  EXPECT_EQ(queue.depth(), 0);
  // FIFO: sequences ascend in admission order.
  EXPECT_LT(cut.batch[0].sequence, cut.batch[1].sequence);
  EXPECT_EQ(*std::static_pointer_cast<int>(cut.batch[0].work), 1);
}

TEST(ServeBatchingTest, FullQueueCutsImmediatelyAndCapsBatch) {
  std::int64_t now = 0;
  BatchingQueue queue(SmallPolicy(), [&now] { return now; });
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.Submit(core::StopToken(), Work(i)).ok());
  }
  // 6 pending >= max_batch 4: cut is due with NO time elapsed, but takes
  // at most max_batch requests.
  BatchCut cut = queue.CutBatch(/*now_nanos=*/0, /*flush=*/false);
  ASSERT_EQ(cut.batch.size(), 4u);
  EXPECT_EQ(queue.depth(), 2);
  // The remainder is below max_batch and below linger: not due yet.
  EXPECT_TRUE(queue.CutBatch(/*now_nanos=*/500, /*flush=*/false).Empty());
  // Flush takes it regardless.
  EXPECT_EQ(queue.CutBatch(/*now_nanos=*/500, /*flush=*/true).batch.size(),
            2u);
}

TEST(ServeBatchingTest, ExpiredRequestsDropBeforeDispatch) {
  std::int64_t now = 0;
  BatchingQueue queue(SmallPolicy(), [&now] { return now; });

  core::StopSource dead;
  dead.SetDeadlineNanos(1);  // SteadyNowNanos is long past 1ns: expired
  core::StopSource cancelled;
  cancelled.RequestStop();
  ASSERT_TRUE(queue.Submit(dead.token(), Work(0)).ok());
  ASSERT_TRUE(queue.Submit(cancelled.token(), Work(1)).ok());
  ASSERT_TRUE(queue.Submit(core::StopToken(), Work(2)).ok());

  BatchCut cut = queue.CutBatch(/*now_nanos=*/2000, /*flush=*/false);
  // The two dead requests come back in `expired` — never inside a batch —
  // and the one live request rides the linger cut.
  ASSERT_EQ(cut.expired.size(), 2u);
  EXPECT_TRUE(cut.expired[0].deadline.deadline_exceeded());
  EXPECT_TRUE(cut.expired[1].deadline.stop_requested());
  ASSERT_EQ(cut.batch.size(), 1u);
  EXPECT_EQ(*std::static_pointer_cast<int>(cut.batch[0].work), 2);
}

TEST(ServeBatchingTest, OverloadRejectsWithUnavailable) {
  BatchingPolicy policy = SmallPolicy();
  policy.max_queue_depth = 2;
  std::int64_t now = 0;
  BatchingQueue queue(policy, [&now] { return now; });
  ASSERT_TRUE(queue.Submit(core::StopToken(), Work(0)).ok());
  ASSERT_TRUE(queue.Submit(core::StopToken(), Work(1)).ok());
  const core::Status rejected = queue.Submit(core::StopToken(), Work(2));
  EXPECT_EQ(rejected.code(), core::StatusCode::kUnavailable);
  EXPECT_EQ(queue.depth(), 2);
  // Draining the queue re-opens admission.
  EXPECT_EQ(queue.CutBatch(0, /*flush=*/true).batch.size(), 2u);
  EXPECT_TRUE(queue.Submit(core::StopToken(), Work(3)).ok());
}

TEST(ServeBatchingTest, CloseRejectsNewAndFlushesOld) {
  std::int64_t now = 0;
  BatchingQueue queue(SmallPolicy(), [&now] { return now; });
  ASSERT_TRUE(queue.Submit(core::StopToken(), Work(0)).ok());
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.Submit(core::StopToken(), Work(1)).code(),
            core::StatusCode::kUnavailable);
  // The admitted request still comes out (drain promise), then the
  // all-empty cut signals "drained".
  BatchCut cut = queue.WaitBatch();
  ASSERT_EQ(cut.batch.size(), 1u);
  EXPECT_TRUE(queue.WaitBatch().Empty());
}

TEST(ServeBatchingTest, GlobalStopRejectsNewSubmits) {
  std::int64_t now = 0;
  BatchingQueue queue(SmallPolicy(), [&now] { return now; });
  core::RequestGlobalStop();
  EXPECT_EQ(queue.Submit(core::StopToken(), Work(0)).code(),
            core::StatusCode::kUnavailable);
  core::ClearGlobalStop();
  EXPECT_TRUE(queue.Submit(core::StopToken(), Work(1)).ok());
}

TEST(ServeBatchingTest, PolicyBoundsAreClamped) {
  BatchingPolicy degenerate;
  degenerate.max_batch = 0;
  degenerate.max_linger_nanos = -5;
  degenerate.max_queue_depth = 0;
  BatchingQueue queue(degenerate);
  EXPECT_EQ(queue.policy().max_batch, 1);
  EXPECT_EQ(queue.policy().max_linger_nanos, 0);
  EXPECT_EQ(queue.policy().max_queue_depth, 1);
}

// 8 producers hammer Submit (some pre-cancelled, some with expired
// deadlines) against one WaitBatch dispatcher on the real clock. Every
// admitted request must come back exactly once — in a batch or in
// `expired` — and nothing may be left pending after the drain.
TEST(ServeBatchingHammerTest, ConcurrentSubmitCancelDrain) {
  BatchingPolicy policy;
  policy.max_batch = 8;
  policy.max_linger_nanos = 100'000;  // 0.1 ms: plenty of real cuts
  policy.max_queue_depth = 64;
  BatchingQueue queue(policy);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 300;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> dispatched{0};
  std::atomic<int> expired{0};

  std::thread dispatcher([&] {
    for (;;) {
      BatchCut cut = queue.WaitBatch();
      if (cut.Empty()) return;
      dispatched += static_cast<int>(cut.batch.size());
      expired += static_cast<int>(cut.expired.size());
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      core::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        core::StopToken token;
        core::StopSource source;  // outlives Submit; queue copies token
        const int kind = rng.Int(0, 9);
        if (kind == 0) {
          source.RequestStop();
          token = source.token();
        } else if (kind == 1) {
          source.SetDeadlineNanos(1);  // already expired
          token = source.token();
        }
        if (queue.Submit(token, Work(t * kPerThread + i)).ok()) {
          ++accepted;
        } else {
          ++rejected;  // transient overload is legal under the hammer
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  queue.Close();
  dispatcher.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(dispatched.load() + expired.load(), accepted.load());
  EXPECT_EQ(queue.depth(), 0);
  EXPECT_TRUE(queue.WaitBatch().Empty());  // closed queues stay drained
}

}  // namespace
}  // namespace tsaug::serve
