// Tests for the preserving branch: label-preserving range noise (Fig. 5)
// and structure-preserving OHIT (Fig. 6).
#include <cmath>

#include <gtest/gtest.h>

#include "augment/preserving.h"
#include "linalg/distance.h"

namespace tsaug::augment {
namespace {

core::TimeSeries Point2d(double x, double y) {
  return core::TimeSeries::FromChannels({{x}, {y}});
}

// Two classes on a line, 1 apart at the closest pair.
core::Dataset TwoBlobs() {
  core::Dataset train;
  train.Add(Point2d(0.0, 0.0), 0);
  train.Add(Point2d(0.2, 0.0), 0);
  train.Add(Point2d(0.4, 0.0), 0);
  train.Add(Point2d(1.4, 0.0), 1);
  train.Add(Point2d(1.6, 0.0), 1);
  return train;
}

TEST(RangeNoise, NeverCrossesNearestEnemyRadius) {
  core::Dataset train = TwoBlobs();
  RangeNoise range(0.5);
  core::Rng rng(1);
  const auto generated = range.Generate(train, 0, 200, rng);
  for (const core::TimeSeries& s : generated) {
    // Every synthetic point must lie within safety * d(seed, enemy) of its
    // seed; since all class-0 seeds are at least 1.0 from class 1 and the
    // factor is 0.5, generated points stay left of x = 0.4 + 0.5.
    EXPECT_LT(s.at(0, 0), 0.95);
  }
}

TEST(RangeNoise, LabelPreservedUnderOneNearestNeighbor) {
  // The formal guarantee: every generated point's nearest original
  // instance has the seed's label.
  core::Dataset train = TwoBlobs();
  RangeNoise range(0.5);
  core::Rng rng(2);
  for (const core::TimeSeries& s : range.Generate(train, 0, 100, rng)) {
    double best = 1e300;
    int best_label = -1;
    for (int i = 0; i < train.size(); ++i) {
      const double d = linalg::EuclideanDistance(s, train.series(i));
      if (d < best) {
        best = d;
        best_label = train.label(i);
      }
    }
    EXPECT_EQ(best_label, 0);
  }
}

TEST(RangeNoise, SingleClassFallsBackToRelativeRadius) {
  core::Dataset train;
  train.Add(Point2d(3.0, 4.0), 0);  // norm 5
  RangeNoise range(0.5);
  core::Rng rng(3);
  for (const core::TimeSeries& s : range.Generate(train, 0, 50, rng)) {
    EXPECT_LE(linalg::EuclideanDistance(s, train.series(0)), 0.5 + 1e-9);
  }
}

core::Dataset TwoModeMinority() {
  core::Dataset train;
  // Minority class 0 with two well-separated modes.
  const double modes[2][2] = {{0.0, 0.0}, {10.0, 10.0}};
  core::Rng rng(4);
  for (int mode = 0; mode < 2; ++mode) {
    for (int i = 0; i < 6; ++i) {
      train.Add(Point2d(modes[mode][0] + rng.Normal(0, 0.3),
                        modes[mode][1] + rng.Normal(0, 0.3)),
                0);
    }
  }
  for (int i = 0; i < 20; ++i) {
    train.Add(Point2d(5.0 + rng.Normal(0, 0.3), -5.0 + rng.Normal(0, 0.3)), 1);
  }
  return train;
}

TEST(Ohit, ClusersTwoModesSeparately) {
  core::Dataset train = TwoModeMinority();
  Ohit ohit;
  const std::vector<int> assignment = ohit.ClusterClass(train, 0);
  ASSERT_EQ(assignment.size(), 12u);
  // Members 0-5 share a cluster, 6-11 share another, and they differ.
  for (int i = 1; i < 6; ++i) EXPECT_EQ(assignment[static_cast<size_t>(i)], assignment[0]);
  for (int i = 7; i < 12; ++i) EXPECT_EQ(assignment[static_cast<size_t>(i)], assignment[6]);
  EXPECT_NE(assignment[0], assignment[6]);
}

TEST(Ohit, SamplesStayNearTheirModes) {
  core::Dataset train = TwoModeMinority();
  Ohit ohit;
  core::Rng rng(5);
  const auto generated = ohit.Generate(train, 0, 60, rng);
  ASSERT_EQ(generated.size(), 60u);
  int near_mode_a = 0;
  int near_mode_b = 0;
  for (const core::TimeSeries& s : generated) {
    const double da = std::hypot(s.at(0, 0) - 0.0, s.at(1, 0) - 0.0);
    const double db = std::hypot(s.at(0, 0) - 10.0, s.at(1, 0) - 10.0);
    if (std::min(da, db) < 3.0) {
      (da < db ? near_mode_a : near_mode_b) += 1;
    }
  }
  // Nearly all samples fall close to one of the two modes, and both modes
  // receive samples (structure preserved, no averaging across modes).
  EXPECT_GE(near_mode_a + near_mode_b, 55);
  EXPECT_GT(near_mode_a, 10);
  EXPECT_GT(near_mode_b, 10);
}

TEST(Ohit, CovarianceStructurePreserved) {
  // An elongated class: samples should inherit the anisotropy.
  core::Dataset train;
  core::Rng data_rng(6);
  for (int i = 0; i < 40; ++i) {
    train.Add(Point2d(data_rng.Normal(0, 3.0), data_rng.Normal(0, 0.2)), 0);
  }
  train.Add(Point2d(50, 50), 1);
  Ohit ohit;
  core::Rng rng(7);
  const auto generated = ohit.Generate(train, 0, 300, rng);
  double var_x = 0.0;
  double var_y = 0.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (const core::TimeSeries& s : generated) {
    mean_x += s.at(0, 0) / static_cast<double>(generated.size());
    mean_y += s.at(1, 0) / static_cast<double>(generated.size());
  }
  for (const core::TimeSeries& s : generated) {
    var_x += std::pow(s.at(0, 0) - mean_x, 2) / static_cast<double>(generated.size());
    var_y += std::pow(s.at(1, 0) - mean_y, 2) / static_cast<double>(generated.size());
  }
  EXPECT_GT(var_x, 5.0 * var_y);
}

TEST(Ohit, TinyClassStillGenerates) {
  core::Dataset train;
  train.Add(Point2d(1, 1), 0);
  train.Add(Point2d(2, 2), 0);
  train.Add(Point2d(8, 8), 1);
  train.Add(Point2d(9, 9), 1);
  train.Add(Point2d(8, 9), 1);
  Ohit ohit;
  core::Rng rng(8);
  EXPECT_EQ(ohit.Generate(train, 0, 4, rng).size(), 4u);
}

}  // namespace
}  // namespace tsaug::augment
