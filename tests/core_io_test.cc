#include "core/io.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace tsaug::core {
namespace {

TEST(SeriesCsv, WritesHeaderAndRows) {
  TimeSeries s = TimeSeries::FromChannels({{1, 2}, {3, 4}});
  std::ostringstream out;
  WriteSeriesCsv(s, out);
  EXPECT_EQ(out.str(), "t,ch0,ch1\n0,1,3\n1,2,4\n");
}

TEST(SeriesCsv, EmitsNaNLiteral) {
  TimeSeries s = TimeSeries::FromChannels({{1, std::nan("")}});
  std::ostringstream out;
  WriteSeriesCsv(s, out);
  EXPECT_NE(out.str().find("NaN"), std::string::npos);
}

TEST(DatasetCsv, RoundTripsThroughStream) {
  Dataset data;
  data.Add(TimeSeries::FromChannels({{1.5, 2.5}, {3.5, 4.5}}), 0);
  data.Add(TimeSeries::FromChannels({{-1, 0}, {7, 8}}), 2);

  std::stringstream buffer;
  WriteDatasetCsv(data, buffer);
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCsv(buffer, &loaded));
  ASSERT_EQ(loaded.size(), 2);
  EXPECT_EQ(loaded.series(0), data.series(0));
  EXPECT_EQ(loaded.series(1), data.series(1));
  EXPECT_EQ(loaded.label(0), 0);
  EXPECT_EQ(loaded.label(1), 2);
}

TEST(DatasetCsv, RoundTripsNaN) {
  Dataset data;
  data.Add(TimeSeries::FromChannels({{1, std::nan(""), 3}}), 1);
  std::stringstream buffer;
  WriteDatasetCsv(data, buffer);
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCsv(buffer, &loaded));
  EXPECT_TRUE(std::isnan(loaded.series(0).at(0, 1)));
  EXPECT_DOUBLE_EQ(loaded.series(0).at(0, 2), 3.0);
}

TEST(DatasetCsv, RejectsGarbage) {
  std::stringstream buffer("not,a,valid\nheader at all");
  Dataset loaded;
  EXPECT_FALSE(ReadDatasetCsv(buffer, &loaded));
}

TEST(DatasetCsv, FileRoundTrip) {
  Dataset data;
  data.Add(TimeSeries::FromChannels({{9, 8, 7}}), 0);
  const std::string path = "/tmp/tsaug_io_test.csv";
  ASSERT_TRUE(WriteDatasetCsv(data, path));
  Dataset loaded;
  ASSERT_TRUE(ReadDatasetCsv(path, &loaded));
  EXPECT_EQ(loaded.series(0), data.series(0));
}

TEST(DatasetCsv, MissingFileFails) {
  Dataset loaded;
  EXPECT_FALSE(ReadDatasetCsv("/nonexistent/path.csv", &loaded));
}

}  // namespace
}  // namespace tsaug::core
