// Frame codec (serve/frame.h): round trips are exact, and hostile bytes —
// truncations, oversized prefixes, garbage, trailing bytes, absurd counts
// — come back as typed kInvalidArgument, never a crash. No sockets
// anywhere: the codec is a plain library over byte strings.
#include "serve/frame.h"

#include <cmath>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "core/time_series.h"
#include "gtest/gtest.h"

namespace tsaug::serve {
namespace {

core::TimeSeries MakeSeries(int channels, int length, std::uint64_t seed) {
  core::Rng rng(seed);
  core::TimeSeries series(channels, length);
  for (int c = 0; c < channels; ++c) {
    for (int t = 0; t < length; ++t) {
      series.at(c, t) = rng.Normal();
    }
  }
  return series;
}

AugmentRequest MakeAugmentRequest() {
  AugmentRequest request;
  request.request_id = 42;
  request.seed = 0xdeadbeefcafe1234ull;
  request.timeout_millis = 250;
  request.technique = "smote";
  request.label = 1;
  request.count = 7;
  return request;
}

/// Decodes `frame` expecting exactly one complete valid message.
Message DecodeAll(const std::string& frame) {
  Message message;
  std::size_t consumed = 0;
  const core::Status status = DecodeFrame(frame, &message, &consumed);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(consumed, frame.size());
  return message;
}

TEST(ServeCodecTest, AugmentRequestRoundTrip) {
  const AugmentRequest request = MakeAugmentRequest();
  const Message decoded = DecodeAll(EncodeFrame(request));
  ASSERT_EQ(decoded.type, MessageType::kAugmentRequest);
  EXPECT_EQ(std::get<AugmentRequest>(decoded.payload), request);
}

TEST(ServeCodecTest, ScoreRequestRoundTripIsBitwise) {
  ScoreRequest request;
  request.request_id = 7;
  request.timeout_millis = 0;
  request.series = MakeSeries(3, 17, 99);
  // Perturb a value to a non-round double: the codec ships IEEE-754 bit
  // patterns, so even denormal-ish values must survive exactly.
  request.series.at(2, 16) = 1.0 / 3.0;
  const Message decoded = DecodeAll(EncodeFrame(request));
  ASSERT_EQ(decoded.type, MessageType::kScoreRequest);
  EXPECT_EQ(std::get<ScoreRequest>(decoded.payload), request);
}

TEST(ServeCodecTest, AugmentResponseRoundTrip) {
  AugmentResponse response;
  response.request_id = 43;
  response.status = core::DegenerateInputError("class too small");
  response.series = {MakeSeries(2, 8, 1), MakeSeries(2, 8, 2)};
  const Message decoded = DecodeAll(EncodeFrame(response));
  ASSERT_EQ(decoded.type, MessageType::kAugmentResponse);
  EXPECT_EQ(std::get<AugmentResponse>(decoded.payload), response);
}

TEST(ServeCodecTest, ScoreResponseRoundTrip) {
  ScoreResponse response;
  response.request_id = 44;
  response.status = core::OkStatus();
  response.label = 3;
  const Message decoded = DecodeAll(EncodeFrame(response));
  ASSERT_EQ(decoded.type, MessageType::kScoreResponse);
  EXPECT_EQ(std::get<ScoreResponse>(decoded.payload), response);
}

TEST(ServeCodecTest, ScoreRequestSanitizeFlagRoundTrips) {
  ScoreRequest request;
  request.request_id = 12;
  request.series = MakeSeries(2, 6, 31);
  request.sanitize_non_finite = true;
  const Message decoded = DecodeAll(EncodeFrame(request));
  ASSERT_EQ(decoded.type, MessageType::kScoreRequest);
  EXPECT_EQ(std::get<ScoreRequest>(decoded.payload), request);
  EXPECT_TRUE(std::get<ScoreRequest>(decoded.payload).sanitize_non_finite);
}

TEST(ServeCodecTest, SanitizeFlagBeyondOneRejected) {
  ScoreRequest request;
  request.request_id = 13;
  request.series = MakeSeries(1, 4, 32);
  std::string frame = EncodeFrame(request);
  // The sanitize flag byte sits after: u32 len, u8 type, u64 id,
  // u32 timeout. Only 0 and 1 are valid on the wire.
  frame[4 + 1 + 8 + 4] = 2;
  Message message;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, &message, &consumed).code(),
            core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, NonFiniteSamplesRejectedUnlessOptedIn) {
  ScoreRequest request;
  request.request_id = 14;
  request.series = MakeSeries(2, 5, 33);
  request.series.at(1, 3) = std::numeric_limits<double>::infinity();

  // Without the opt-in, the validation helper produces the typed reject
  // the service answers with (connection stays open — this is not a
  // codec-level DecodeFrame failure).
  const core::Status rejected = ValidateScoreRequestFinite(request);
  ASSERT_EQ(rejected.code(), core::StatusCode::kInvalidArgument);
  // Flat index of (channel 1, t 3) in a 2x5 series.
  EXPECT_NE(rejected.ToString().find("index 8"), std::string::npos);

  request.sanitize_non_finite = true;
  EXPECT_TRUE(ValidateScoreRequestFinite(request).ok());

  // NaN counts as non-finite too.
  ScoreRequest nan_request;
  nan_request.request_id = 15;
  nan_request.series = MakeSeries(1, 3, 34);
  nan_request.series.at(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ValidateScoreRequestFinite(nan_request).code(),
            core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, SanitizeNonFiniteRewritesToQuietNaN) {
  core::TimeSeries series = MakeSeries(2, 4, 35);
  series.at(0, 1) = std::numeric_limits<double>::infinity();
  series.at(1, 2) = -std::numeric_limits<double>::infinity();
  series.at(1, 3) = std::numeric_limits<double>::quiet_NaN();
  const double untouched = series.at(0, 0);
  EXPECT_EQ(SanitizeNonFinite(series), 3);
  EXPECT_TRUE(std::isnan(series.at(0, 1)));
  EXPECT_TRUE(std::isnan(series.at(1, 2)));
  EXPECT_TRUE(std::isnan(series.at(1, 3)));
  EXPECT_EQ(series.at(0, 0), untouched);
  // Already-clean series are left alone.
  core::TimeSeries clean = MakeSeries(1, 4, 36);
  EXPECT_EQ(SanitizeNonFinite(clean), 0);
}

TEST(ServeCodecTest, StreamingDecodesConcatenatedFrames) {
  const AugmentRequest first = MakeAugmentRequest();
  ScoreRequest second;
  second.request_id = 8;
  second.series = MakeSeries(1, 4, 5);
  std::string stream = EncodeFrame(first) + EncodeFrame(second);

  Message message;
  std::size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(stream, &message, &consumed).ok());
  ASSERT_GT(consumed, 0u);
  ASSERT_EQ(message.type, MessageType::kAugmentRequest);
  EXPECT_EQ(std::get<AugmentRequest>(message.payload), first);
  stream.erase(0, consumed);

  ASSERT_TRUE(DecodeFrame(stream, &message, &consumed).ok());
  EXPECT_EQ(consumed, stream.size());
  ASSERT_EQ(message.type, MessageType::kScoreRequest);
  EXPECT_EQ(std::get<ScoreRequest>(message.payload), second);
}

TEST(ServeCodecTest, EveryTruncationAsksForMoreOrRejects) {
  // A prefix of a valid frame must never decode and never crash: either
  // "need more bytes" (OK, consumed 0) or — once the length prefix lies
  // about bytes that then end mid-field — a typed reject is acceptable
  // only when the body is complete-but-shorter; a pure prefix is always
  // "need more".
  const std::string frame = EncodeFrame(MakeAugmentRequest());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    Message message;
    std::size_t consumed = 1;
    const core::Status status =
        DecodeFrame(frame.substr(0, len), &message, &consumed);
    EXPECT_TRUE(status.ok()) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u) << "prefix length " << len;
  }
}

TEST(ServeCodecTest, OversizedLengthPrefixRejected) {
  std::string frame;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((huge >> (8 * i)) & 0xffu));
  }
  Message message;
  std::size_t consumed = 0;
  const core::Status status = DecodeFrame(frame, &message, &consumed);
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, UnknownTypeRejected) {
  std::string frame;
  frame.append({1, 0, 0, 0});  // body length 1
  frame.push_back(static_cast<char>(0x7f));  // no such MessageType
  Message message;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, &message, &consumed).code(),
            core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, TrailingBytesInsideBodyRejected) {
  std::string frame = EncodeFrame(MakeAugmentRequest());
  // Declare one more body byte and append it: the fields no longer
  // consume the whole body.
  frame.push_back('\0');
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(frame.size()) - 4 + 0;
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] =
        static_cast<char>(((body_len) >> (8 * i)) & 0xffu);
  }
  Message message;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, &message, &consumed).code(),
            core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, AbsurdGenerateCountRejected) {
  AugmentRequest request = MakeAugmentRequest();
  request.count = kMaxGenerateCount + 1;
  Message message;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(EncodeFrame(request), &message, &consumed).code(),
            core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, LyingSeriesGeometryRejected) {
  // A score request whose series header claims far more samples than the
  // body carries must reject (bounded by remaining bytes), not allocate.
  ScoreRequest request;
  request.request_id = 1;
  request.series = MakeSeries(1, 2, 3);
  std::string frame = EncodeFrame(request);
  // The series channel-count field sits after: u32 len, u8 type, u64 id,
  // u32 timeout, u8 sanitize flag. Overwrite it with 0xffffffff.
  const std::size_t channels_at = 4 + 1 + 8 + 4 + 1;
  for (std::size_t i = 0; i < 4; ++i) {
    frame[channels_at + i] = static_cast<char>(0xff);
  }
  Message message;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, &message, &consumed).code(),
            core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, HugeChannelsWithZeroLengthRejected) {
  // channels >= 2^31 with length == 0 has zero samples, so it slips past
  // any samples-vs-remaining-bytes product check; the decoder must reject
  // the dimension itself rather than cast it to a negative int (which
  // would abort in the TimeSeries constructor — a remote crash).
  ScoreRequest request;
  request.request_id = 2;
  request.series = core::TimeSeries(0, 0);
  std::string frame = EncodeFrame(request);
  // Series header sits after: u32 len, u8 type, u64 id, u32 timeout,
  // u8 sanitize flag.
  const std::size_t channels_at = 4 + 1 + 8 + 4 + 1;
  const std::uint32_t huge = 0x80000000u;
  for (std::size_t i = 0; i < 4; ++i) {
    frame[channels_at + i] = static_cast<char>((huge >> (8 * i)) & 0xffu);
  }
  Message message;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, &message, &consumed).code(),
            core::StatusCode::kInvalidArgument);
}

TEST(ServeCodecTest, FuzzedBuffersNeverCrash) {
  // Seeded corpus, three shapes of hostility: pure random bytes, random
  // bytes behind a self-consistent length prefix, and single-byte
  // mutations of valid frames. The invariant under test: DecodeFrame
  // always returns (OK or kInvalidArgument) and never reads out of
  // bounds / aborts — the asan/ubsan CI legs run this test too.
  core::Rng rng(20240808);
  const std::string valid_frames[] = {
      EncodeFrame(MakeAugmentRequest()),
      [] {
        ScoreRequest r;
        r.request_id = 9;
        r.series = MakeSeries(2, 5, 11);
        return EncodeFrame(r);
      }(),
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string buffer;
    const int shape = rng.Int(0, 2);
    if (shape == 0) {
      const int len = rng.Int(0, 64);
      for (int i = 0; i < len; ++i) {
        buffer.push_back(static_cast<char>(rng.Int(0, 255)));
      }
    } else if (shape == 1) {
      const std::uint32_t body_len = static_cast<std::uint32_t>(
          rng.Int(0, 96));
      for (int i = 0; i < 4; ++i) {
        buffer.push_back(static_cast<char>((body_len >> (8 * i)) & 0xffu));
      }
      for (std::uint32_t i = 0; i < body_len; ++i) {
        buffer.push_back(static_cast<char>(rng.Int(0, 255)));
      }
    } else {
      buffer = valid_frames[static_cast<std::size_t>(rng.Int(0, 1))];
      const int mutations = rng.Int(1, 4);
      for (int m = 0; m < mutations; ++m) {
        const std::size_t pos =
            static_cast<std::size_t>(rng.Index(
                static_cast<int>(buffer.size())));
        buffer[pos] = static_cast<char>(rng.Int(0, 255));
      }
    }
    Message message;
    std::size_t consumed = 0;
    const core::Status status = DecodeFrame(buffer, &message, &consumed);
    if (status.ok() && consumed > 0) {
      EXPECT_LE(consumed, buffer.size());
    } else if (!status.ok()) {
      EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace tsaug::serve
