// Chaos tests for the sharded grid supervisor (eval/shard.h), driven
// through the real tools/grid_shard_main binary (path in TSAUG_SHARD_BIN)
// with real fork/exec worker processes:
//   - a fault-free sharded run's merged report is byte-identical to the
//     unsharded golden run;
//   - a worker killed mid-shard by the shard.worker abort action is
//     restarted with backoff and the merged report stays byte-identical,
//     at 1, 2 and 8 worker threads;
//   - spawn faults and journal-heartbeat hangs are likewise retried;
//   - a shard that exhausts its retries surfaces as failed kUnavailable
//     cells in the report (never accuracy 0) and the run still exits 0.
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace tsaug::eval {
namespace {

std::string TempDirFor(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

const char* ShardBinary() { return std::getenv("TSAUG_SHARD_BIN"); }

/// Runs grid_shard_main over a small fixed grid (3 datasets x 2 runs x
/// {baseline, noise_1.0, smote}) with `args` appended, the given worker
/// thread count and TSAUG_FAULTS spec. Returns the raw std::system wait
/// status (0 = clean exit).
int RunShard(const std::string& args, int threads,
             const std::string& faults = "") {
  std::string command;
  command += "TSAUG_DATASETS='Epilepsy,RacketSports,Heartbeat' ";
  command += "TSAUG_RUNS=2 TSAUG_KERNELS=80 ";
  command += "TSAUG_TECHNIQUES='noise_1.0,smote' ";
  command += "TSAUG_JOURNAL='' ";
  command += "TSAUG_NUM_THREADS=" + std::to_string(threads) + " ";
  command += "TSAUG_FAULTS='" + faults + "' ";
  // Sequential appends: GCC 12 -O2 fires a bogus -Wrestrict on the
  // char*-plus-rvalue-string overload, fatal under the strict CI leg.
  command += "'";
  command += ShardBinary();
  command += "' ";
  command += args;
  return std::system(command.c_str());
}

bool ExitedCleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// The integer value of one counter in a trace::ReportJson dump, 0 when
/// the counter never fired.
int Counter(const std::string& trace_json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const std::size_t pos = trace_json.find(key);
  if (pos == std::string::npos) return 0;
  return std::atoi(trace_json.c_str() + pos + key.size());
}

/// Runs the unsharded golden report into `out` and returns its bytes.
std::string GoldenReport(const std::string& tag, int threads) {
  const std::string out = TempDirFor("shard_golden_" + tag + ".txt");
  std::filesystem::remove(out);
  const int status = RunShard("--shards 0 --out '" + out + "'", threads);
  EXPECT_TRUE(ExitedCleanly(status));
  return ReadAll(out);
}

TEST(ShardChaos, FaultFreeShardedRunMatchesGoldenByteForByte) {
  if (ShardBinary() == nullptr) GTEST_SKIP() << "TSAUG_SHARD_BIN unset";
  const std::string golden = GoldenReport("plain", 2);
  ASSERT_FALSE(golden.empty());

  const std::string dir = TempDirFor("shard_plain_j");
  const std::string out = TempDirFor("shard_plain_out.txt");
  const std::string trace = TempDirFor("shard_plain_trace.json");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(ExitedCleanly(
      RunShard("--shards 2 --journal-dir '" + dir + "' --out '" + out +
                   "' --trace-json '" + trace + "'",
               2)));
  EXPECT_EQ(ReadAll(out), golden);
  const std::string counters = ReadAll(trace);
  EXPECT_EQ(Counter(counters, "shard.completed"), 2);
  EXPECT_EQ(Counter(counters, "shard.retried"), 0);
}

TEST(ShardChaos, KilledWorkerIsRestartedByteIdenticalAtOneTwoEightThreads) {
  if (ShardBinary() == nullptr) GTEST_SKIP() << "TSAUG_SHARD_BIN unset";
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string tag = std::to_string(threads);
    const std::string golden = GoldenReport("kill_" + tag, threads);
    ASSERT_FALSE(golden.empty());

    const std::string dir = TempDirFor("shard_kill_j_" + tag);
    const std::string out = TempDirFor("shard_kill_out_" + tag + ".txt");
    const std::string trace = TempDirFor("shard_kill_trace_" + tag + ".json");
    std::filesystem::remove_all(dir);
    // Shard 0's first attempt aborts (SIGABRT) at its second dataset, so
    // its journal holds a completed prefix; the restarted attempt resumes
    // past it. The attempt-tagged domain keeps the rule from re-firing.
    ASSERT_TRUE(ExitedCleanly(
        RunShard("--shards 2 --journal-dir '" + dir + "' --out '" + out +
                     "' --trace-json '" + trace + "' --backoff-ms 10",
                 threads, "shard.worker@shard/0/attempt1:2!")));
    EXPECT_EQ(ReadAll(out), golden);
    const std::string counters = ReadAll(trace);
    EXPECT_GE(Counter(counters, "shard.retried"), 1);
    EXPECT_EQ(Counter(counters, "shard.completed"), 2);
    EXPECT_GE(Counter(counters, "shard.spawned"), 3);
  }
}

TEST(ShardChaos, SpawnFaultIsRetriedWithBackoff) {
  if (ShardBinary() == nullptr) GTEST_SKIP() << "TSAUG_SHARD_BIN unset";
  const std::string golden = GoldenReport("spawn", 2);
  ASSERT_FALSE(golden.empty());

  const std::string dir = TempDirFor("shard_spawn_j");
  const std::string out = TempDirFor("shard_spawn_out.txt");
  const std::string trace = TempDirFor("shard_spawn_trace.json");
  std::filesystem::remove_all(dir);
  // The first spawn of shard 1 fails before fork; the shard must still be
  // retried (spawn failures consume an attempt) and complete.
  ASSERT_TRUE(ExitedCleanly(
      RunShard("--shards 2 --journal-dir '" + dir + "' --out '" + out +
                   "' --trace-json '" + trace + "' --backoff-ms 10",
               2, "shard.spawn@shard/1:1")));
  EXPECT_EQ(ReadAll(out), golden);
  const std::string counters = ReadAll(trace);
  EXPECT_GE(Counter(counters, "shard.retried"), 1);
  EXPECT_EQ(Counter(counters, "shard.completed"), 2);
}

TEST(ShardChaos, HungWorkerIsKilledOnHeartbeatStallAndRestarted) {
  if (ShardBinary() == nullptr) GTEST_SKIP() << "TSAUG_SHARD_BIN unset";
  const std::string golden = GoldenReport("hang", 2);
  ASSERT_FALSE(golden.empty());

  const std::string dir = TempDirFor("shard_hang_j");
  const std::string out = TempDirFor("shard_hang_out.txt");
  const std::string trace = TempDirFor("shard_hang_trace.json");
  std::filesystem::remove_all(dir);
  // Shard 1's first attempt wedges in the shard.hang sleep loop (no
  // journal progress); the heartbeat monitor must SIGKILL and restart it.
  ASSERT_TRUE(ExitedCleanly(RunShard(
      "--shards 2 --journal-dir '" + dir + "' --out '" + out +
          "' --trace-json '" + trace +
          "' --backoff-ms 10 --hang-timeout-ms 400 --poll-ms 20",
      2, "shard.hang@shard/1/attempt1:1")));
  EXPECT_EQ(ReadAll(out), golden);
  const std::string counters = ReadAll(trace);
  EXPECT_GE(Counter(counters, "shard.hung_killed"), 1);
  EXPECT_GE(Counter(counters, "shard.retried"), 1);
  EXPECT_EQ(Counter(counters, "shard.completed"), 2);
}

TEST(ShardChaos, ExhaustedRetriesSurfaceAsFailedCellsNotAccuracyZero) {
  if (ShardBinary() == nullptr) GTEST_SKIP() << "TSAUG_SHARD_BIN unset";
  const std::string golden = GoldenReport("fail", 2);
  ASSERT_FALSE(golden.empty());

  const std::string dir = TempDirFor("shard_fail_j");
  const std::string out = TempDirFor("shard_fail_out.txt");
  const std::string trace = TempDirFor("shard_fail_trace.json");
  std::filesystem::remove_all(dir);
  // Every attempt of shard 0 aborts at its first dataset (the "+" rule
  // fires on every consultation), so the shard exhausts max-retries. The
  // run must still exit 0: the surviving shard's cells are merged and the
  // dead shard's cells surface as explicit failures.
  ASSERT_TRUE(ExitedCleanly(
      RunShard("--shards 2 --journal-dir '" + dir + "' --out '" + out +
                   "' --trace-json '" + trace +
                   "' --backoff-ms 10 --max-retries 1",
               2, "shard.worker@shard/0:1+")));
  const std::string report = ReadAll(out);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report, golden);  // degraded, and visibly so
  // The dead shard's cells carry an unavailable error, never a fabricated
  // score: the bit pattern of accuracy 0.0 must not appear where golden
  // had a real accuracy.
  EXPECT_NE(report.find("unavailable"), std::string::npos);
  EXPECT_NE(report.find("cell missing from journal"), std::string::npos);
  const std::string counters = ReadAll(trace);
  EXPECT_GE(Counter(counters, "shard.failed"), 1);
  EXPECT_EQ(Counter(counters, "shard.completed"), 1);
}

}  // namespace
}  // namespace tsaug::eval
