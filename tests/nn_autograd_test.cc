#include "nn/autograd.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace tsaug::nn {
namespace {

TEST(Variable, LeafHasNoBackwardFn) {
  Variable v(Tensor::Scalar(2.0), /*requires_grad=*/true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.node()->parents.size(), 0u);
}

TEST(Variable, BackwardSeedsScalarWithOne) {
  Variable v(Tensor::Scalar(5.0), /*requires_grad=*/true);
  Variable doubled = ScaleBy(v, 2.0);
  doubled.Backward();
  EXPECT_DOUBLE_EQ(v.grad()[0], 2.0);
}

TEST(Variable, GradientsAccumulateAcrossUses) {
  // y = x*x via Mul shares the same node twice: dy/dx = 2x.
  Variable x(Tensor::Scalar(3.0), /*requires_grad=*/true);
  Variable y = Mul(x, x);
  y.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 6.0);
}

TEST(Variable, ChainThroughMultipleOps) {
  // loss = mean(2 * x + 1) over 4 entries -> dloss/dx_i = 0.5.
  Variable x(Tensor({2, 2}, 1.0), /*requires_grad=*/true);
  Variable loss = Mean(AddConst(ScaleBy(x, 2.0), 1.0));
  EXPECT_DOUBLE_EQ(loss.value().scalar(), 3.0);
  loss.Backward();
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x.grad()[i], 0.5);
}

TEST(Variable, NoGradThroughConstantLeaves) {
  Variable constant(Tensor::Scalar(4.0), /*requires_grad=*/false);
  Variable param(Tensor::Scalar(2.0), /*requires_grad=*/true);
  Variable loss = Mul(constant, param);
  loss.Backward();
  EXPECT_DOUBLE_EQ(param.grad()[0], 4.0);
  // The constant's grad buffer may exist but must not require grad.
  EXPECT_FALSE(constant.requires_grad());
}

TEST(Variable, ZeroGradClears) {
  Variable x(Tensor::Scalar(1.0), /*requires_grad=*/true);
  Variable loss = ScaleBy(x, 3.0);
  loss.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 3.0);
  x.ZeroGrad();
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.0);
}

TEST(Variable, RepeatedBackwardAccumulates) {
  Variable x(Tensor::Scalar(1.0), /*requires_grad=*/true);
  Variable loss = ScaleBy(x, 3.0);
  loss.Backward();
  Variable loss2 = ScaleBy(x, 3.0);
  loss2.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 6.0);
}

TEST(Variable, DeepChainDoesNotOverflowStack) {
  // BPTT-like depth: 20000 chained ops must not recurse.
  Variable x(Tensor::Scalar(1.0), /*requires_grad=*/true);
  Variable y = x;
  for (int i = 0; i < 20000; ++i) y = AddConst(y, 0.0);
  y.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 1.0);
}

TEST(Variable, DiamondGraphCountsBothPaths) {
  // z = x + x (through two distinct scaled branches): dz/dx = 5.
  Variable x(Tensor::Scalar(1.0), /*requires_grad=*/true);
  Variable a = ScaleBy(x, 2.0);
  Variable b = ScaleBy(x, 3.0);
  Variable z = Add(a, b);
  z.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 5.0);
}

}  // namespace
}  // namespace tsaug::nn
