#include "augment/dba.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "linalg/distance.h"

namespace tsaug::augment {
namespace {

using core::TimeSeries;

TEST(DtwBarycenterAverage, SingleMemberIsItself) {
  const TimeSeries s = TimeSeries::FromValues({1, 2, 3, 2, 1});
  const TimeSeries avg = DtwBarycenterAverage({s}, {1.0}, s, 3);
  for (int t = 0; t < 5; ++t) {
    EXPECT_NEAR(avg.at(0, t), s.at(0, t), 1e-9);
  }
}

TEST(DtwBarycenterAverage, IdenticalMembersAverageToThemselves) {
  const TimeSeries s = TimeSeries::FromValues({0, 1, 0, -1, 0});
  const TimeSeries avg =
      DtwBarycenterAverage({s, s, s}, {0.3, 0.3, 0.4}, s, 4);
  for (int t = 0; t < 5; ++t) EXPECT_NEAR(avg.at(0, t), s.at(0, t), 1e-9);
}

TEST(DtwBarycenterAverage, AlignsShiftedBumps) {
  // Two shifted copies of a bump: the DBA average should be closer (in
  // DTW) to both members than their pointwise mean is.
  std::vector<double> a(30, 0.0);
  std::vector<double> b(30, 0.0);
  for (int t = 8; t < 13; ++t) a[static_cast<size_t>(t)] = 1.0;
  for (int t = 16; t < 21; ++t) b[static_cast<size_t>(t)] = 1.0;
  const TimeSeries sa = TimeSeries::FromValues(a);
  const TimeSeries sb = TimeSeries::FromValues(b);

  const TimeSeries dba =
      DtwBarycenterAverage({sa, sb}, {0.5, 0.5}, sa, 6);

  std::vector<double> mean(30);
  for (int t = 0; t < 30; ++t) mean[static_cast<size_t>(t)] = 0.5 * (a[static_cast<size_t>(t)] + b[static_cast<size_t>(t)]);
  const TimeSeries pointwise = TimeSeries::FromValues(mean);

  const double dba_cost = linalg::DtwDistance(dba, sa) +
                          linalg::DtwDistance(dba, sb);
  const double mean_cost = linalg::DtwDistance(pointwise, sa) +
                           linalg::DtwDistance(pointwise, sb);
  EXPECT_LT(dba_cost, mean_cost);
  // DBA preserves the bump's amplitude (the pointwise mean halves it).
  double peak = 0.0;
  for (int t = 0; t < 30; ++t) peak = std::max(peak, dba.at(0, t));
  EXPECT_GT(peak, 0.75);
}

TEST(DbaAugmenter, GeneratesDatasetShapedSeries) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {8, 4};
  spec.test_counts = {2, 2};
  spec.num_channels = 2;
  spec.length = 20;
  spec.seed = 3;
  const core::Dataset train = data::MakeSynthetic(spec).train;
  DbaAugmenter dba;
  core::Rng rng(4);
  const auto generated = dba.Generate(train, 0, 6, rng);
  ASSERT_EQ(generated.size(), 6u);
  for (const TimeSeries& s : generated) {
    EXPECT_EQ(s.num_channels(), 2);
    EXPECT_EQ(s.length(), 20);
    for (double v : s.values()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(DbaAugmenter, SyntheticStaysNearClass) {
  // The barycenter of class members should be closer (on average) to its
  // own class than to the other class.
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {10, 10};
  spec.test_counts = {2, 2};
  spec.num_channels = 1;
  spec.length = 24;
  spec.class_separation = 1.5;
  spec.seed = 5;
  const core::Dataset train = data::MakeSynthetic(spec).train;
  DbaAugmenter dba;
  core::Rng rng(6);
  const auto generated = dba.Generate(train, 0, 5, rng);
  for (const TimeSeries& s : generated) {
    double own = 0.0;
    double other = 0.0;
    int own_count = 0;
    int other_count = 0;
    for (int i = 0; i < train.size(); ++i) {
      const double d = linalg::DtwDistance(s, train.series(i), 4);
      if (train.label(i) == 0) {
        own += d;
        ++own_count;
      } else {
        other += d;
        ++other_count;
      }
    }
    EXPECT_LT(own / own_count, other / other_count);
  }
}

}  // namespace
}  // namespace tsaug::augment
