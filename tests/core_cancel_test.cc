// Unit tests for the cooperative-cancellation subsystem (core/cancel.h):
// token/source plumbing, monotonic deadlines, the thread-local scoped
// token, the process-wide stop channel (including real SIGINT/SIGTERM
// delivery) and the deterministic fault hooks CheckStop consults.
#include <csignal>
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/cancel.h"
#include "core/faultpoint.h"
#include "core/status.h"

namespace tsaug::core {
namespace {

/// Leaves no global stop or fault spec behind, whatever a test does.
class CleanSlate {
 public:
  CleanSlate() {
    ClearGlobalStop();
    fault::Clear();
  }
  ~CleanSlate() {
    ClearGlobalStop();
    fault::Clear();
  }
};

TEST(StopToken, DefaultTokenIsInert) {
  const StopToken token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_EQ(token.deadline_nanos(), std::numeric_limits<std::int64_t>::max());
}

TEST(StopToken, RequestStopIsVisibleThroughEveryToken) {
  StopSource source;
  const StopToken before = source.token();
  EXPECT_TRUE(before.stop_possible());
  EXPECT_FALSE(before.stop_requested());
  source.RequestStop();
  EXPECT_TRUE(before.stop_requested());          // token taken before
  EXPECT_TRUE(source.token().stop_requested());  // and after
  EXPECT_TRUE(source.stop_requested());
}

TEST(StopToken, PastDeadlineIsExceededFutureIsNot) {
  StopSource source;
  source.SetDeadlineNanos(SteadyNowNanos() - 1);
  EXPECT_TRUE(source.token().has_deadline());
  EXPECT_TRUE(source.token().deadline_exceeded());

  StopSource patient;
  patient.SetDeadlineNanos(SteadyNowNanos() + 3'600'000'000'000);  // +1h
  EXPECT_TRUE(patient.token().has_deadline());
  EXPECT_FALSE(patient.token().deadline_exceeded());
}

TEST(StopToken, NonPositiveBudgetExpiresImmediately) {
  StopSource source;
  source.SetDeadlineAfterSeconds(0.0);
  EXPECT_TRUE(source.token().deadline_exceeded());
  StopSource negative;
  negative.SetDeadlineAfterSeconds(-5.0);
  EXPECT_TRUE(negative.token().deadline_exceeded());
}

TEST(CheckStop, OkWhenNothingIsStopping) {
  CleanSlate slate;
  EXPECT_TRUE(CheckStop("test.site").ok());
}

TEST(CheckStop, ReportsCancelledFromTheCurrentToken) {
  CleanSlate slate;
  StopSource source;
  source.RequestStop();
  {
    ScopedStopToken scoped(source.token());
    const Status status = CheckStop("trainer.epoch");
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_NE(status.context().find("trainer.epoch"), std::string::npos);
  }
  // The previous (inert) token is restored on scope exit.
  EXPECT_TRUE(CheckStop("trainer.epoch").ok());
}

TEST(CheckStop, ReportsDeadlineExceededFromTheCurrentToken) {
  CleanSlate slate;
  StopSource source;
  source.SetDeadlineNanos(SteadyNowNanos() - 1);
  ScopedStopToken scoped(source.token());
  const Status status = CheckStop("dba.iteration");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.context().find("deadline exceeded"), std::string::npos);
}

TEST(CheckStop, ScopedTokensNestBySaveRestore) {
  CleanSlate slate;
  StopSource outer;
  outer.RequestStop();
  StopSource inner;  // never stopped
  ScopedStopToken outer_scope(outer.token());
  EXPECT_FALSE(CheckStop("outer").ok());
  {
    ScopedStopToken inner_scope(inner.token());
    // The innermost token wins: the outer stop is masked for this scope
    // (exactly how a per-cell token shadows nothing-in-particular).
    EXPECT_TRUE(CheckStop("inner").ok());
    EXPECT_FALSE(CurrentStopToken().stop_requested());
  }
  EXPECT_FALSE(CheckStop("outer.again").ok());
}

TEST(GlobalStop, RequestAndClear) {
  CleanSlate slate;
  EXPECT_FALSE(GlobalStopRequested());
  RequestGlobalStop();
  EXPECT_TRUE(GlobalStopRequested());
  EXPECT_EQ(GlobalStopSignal(), 0);
  const Status status = CheckStop("grid.run");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.context().find("stop requested"), std::string::npos);
  ClearGlobalStop();
  EXPECT_FALSE(GlobalStopRequested());
  EXPECT_TRUE(CheckStop("grid.run").ok());
}

TEST(GlobalStop, SignalHandlersRequestStopWithTheSignalNumber) {
  CleanSlate slate;
  InstallStopSignalHandlers();
  // std::raise runs the handler synchronously on this thread; the handler
  // only touches lock-free atomics, so this is the real delivery path.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(GlobalStopRequested());
  EXPECT_EQ(GlobalStopSignal(), SIGTERM);
  const Status status = CheckStop("grid.run");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.context().find(std::to_string(SIGTERM)),
            std::string::npos);

  ClearGlobalStop();
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(GlobalStopRequested());
  EXPECT_EQ(GlobalStopSignal(), SIGINT);
}

TEST(CheckStop, InjectedStopAndDeadlineFireDeterministically) {
  CleanSlate slate;
  fault::SetSpec("cancel.stop:2");
  EXPECT_TRUE(CheckStop("poll").ok());  // hit 1 of 2
  const Status stopped = CheckStop("poll");
  EXPECT_EQ(stopped.code(), StatusCode::kCancelled);
  EXPECT_NE(stopped.context().find("injected stop"), std::string::npos);
  EXPECT_TRUE(CheckStop("poll").ok());  // non-sticky rule: fired once

  fault::SetSpec("cancel.deadline:1");
  const Status expired = CheckStop("poll");
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(expired.context().find("injected deadline"), std::string::npos);
}

TEST(Status, CancellationCodesHaveStableNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(DeadlineExceededError("x").code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace tsaug::core
