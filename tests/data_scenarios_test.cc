#include "data/scenarios.h"

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/validate.h"

namespace tsaug::data {
namespace {

bool SplitsBitIdentical(const core::Dataset& a, const core::Dataset& b) {
  if (a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (a.label(i) != b.label(i)) return false;
    const auto& av = a.series(i).values();
    const auto& bv = b.series(i).values();
    if (av.size() != bv.size()) return false;
    for (size_t v = 0; v < av.size(); ++v) {
      if (std::memcmp(&av[v], &bv[v], sizeof(double)) != 0) return false;
    }
  }
  return true;
}

TEST(ScenarioCatalog, IdsAreUniqueStableAndWellFormed) {
  const std::vector<ScenarioInfo>& catalog = ScenarioCatalog();
  ASSERT_GE(catalog.size(), 25u);
  std::set<std::string> ids;
  const std::set<std::string> families = {"drift", "imbalance", "missing",
                                          "geometry"};
  for (const ScenarioInfo& info : catalog) {
    EXPECT_FALSE(info.id.empty());
    EXPECT_FALSE(info.summary.empty());
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
    EXPECT_TRUE(families.count(info.family)) << info.family;
  }
  // Every family is represented.
  std::set<std::string> seen;
  for (const ScenarioInfo& info : catalog) seen.insert(info.family);
  EXPECT_EQ(seen, families);
  EXPECT_EQ(ScenarioIds().size(), catalog.size());
}

TEST(ScenarioCatalog, FindScenarioResolvesKnownAndRejectsUnknown) {
  const ScenarioInfo* info = FindScenario("missing_channel_dead");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->family, "missing");
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);

  const core::StatusOr<TrainTest> unknown =
      TryMakeScenarioDataset("no_such_scenario", 1);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(ScenarioCatalog, EveryScenarioGeneratesNonEmptySplits) {
  for (const std::string& id : ScenarioIds()) {
    SCOPED_TRACE(id);
    const core::StatusOr<TrainTest> data = TryMakeScenarioDataset(id, 42);
    ASSERT_TRUE(data.ok());
    EXPECT_GT(data->train.size(), 0);
    EXPECT_GT(data->test.size(), 0);
    EXPECT_GE(data->train.num_classes(), 2);
  }
}

TEST(ScenarioCatalog, DeterministicInIdAndSeed) {
  for (const std::string& id : {std::string("missing_bursty"),
                                std::string("combined_worst_case"),
                                std::string("varlen_extreme")}) {
    SCOPED_TRACE(id);
    const TrainTest a = MakeScenarioDataset(id, 7);
    const TrainTest b = MakeScenarioDataset(id, 7);
    EXPECT_TRUE(SplitsBitIdentical(a.train, b.train));
    EXPECT_TRUE(SplitsBitIdentical(a.test, b.test));
    const TrainTest c = MakeScenarioDataset(id, 8);
    EXPECT_FALSE(SplitsBitIdentical(a.train, c.train));
  }
}

TEST(ScenarioCatalog, ScenariosDrawDecorrelatedStreamsUnderOneSeed) {
  // Two different scenarios under the same study seed must not share
  // generation bits (their seed streams are folded with the id).
  const TrainTest a = MakeScenarioDataset("drift_step_mild", 7);
  const TrainTest b = MakeScenarioDataset("constant_channel", 7);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_FALSE(SplitsBitIdentical(a.train, b.train));
}

TEST(ScenarioCatalog, DriftShiftsTestNotTrain) {
  const TrainTest plain = MakeScenarioDataset("drift_step_severe", 7);
  // Train carries no drift: a NaN-free healthy validation.
  const core::ValidationReport report =
      core::ValidateDataset(plain.train);
  EXPECT_FALSE(report.HasFatal());
  // The +2.5 step shows in the test mean.
  double train_sum = 0.0, test_sum = 0.0;
  long long train_n = 0, test_n = 0;
  for (int i = 0; i < plain.train.size(); ++i) {
    for (double v : plain.train.series(i).values()) {
      train_sum += v;
      ++train_n;
    }
  }
  for (int i = 0; i < plain.test.size(); ++i) {
    for (double v : plain.test.series(i).values()) {
      test_sum += v;
      ++test_n;
    }
  }
  EXPECT_GT(test_sum / test_n, train_sum / train_n + 1.5);
}

TEST(ScenarioCatalog, SingletonScenarioHasSingleMemberClass) {
  const TrainTest data = MakeScenarioDataset("imbalance_singleton", 7);
  const std::vector<int> counts = data.train.ClassCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[2], 1);
}

TEST(ScenarioCatalog, DeadChannelScenarioIsRepairable) {
  const TrainTest data = MakeScenarioDataset("missing_channel_dead", 7);
  const core::ValidationReport report = core::ValidateDataset(data.train);
  EXPECT_FALSE(report.HasFatal());
  EXPECT_TRUE(report.NeedsRepair());
  const core::StatusOr<core::RepairOutcome> repaired =
      core::TryRepairTrainTest(data.train, data.test, core::ValidateOptions{},
                               7);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->dropped_channels, 1);
  EXPECT_EQ(repaired->train.series(0).num_channels(), 2);
}

TEST(ScenarioCatalog, LengthOneScenarioDiagnosesFatalTyped) {
  const TrainTest data = MakeScenarioDataset("length_one_all", 7);
  EXPECT_EQ(data.train.max_length(), 1);
  const core::StatusOr<core::RepairOutcome> repaired =
      core::TryRepairTrainTest(data.train, data.test, core::ValidateOptions{},
                               7);
  ASSERT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status().code(), core::StatusCode::kDegenerateInput);
}

TEST(ScenarioCatalog, EmptyClassScenarioKeepsLabelSpace) {
  const TrainTest data = MakeScenarioDataset("empty_class", 7);
  EXPECT_EQ(data.train.num_classes(), 3);
  const std::vector<int> train_counts = data.train.ClassCounts();
  const std::vector<int> test_counts = data.test.ClassCounts();
  EXPECT_EQ(train_counts[2], 0);
  EXPECT_GT(test_counts[2], 0);
}

TEST(ScenarioCatalog, VarlenTinyMixRepairsByResampling) {
  const TrainTest data = MakeScenarioDataset("varlen_tiny_mix", 7);
  EXPECT_EQ(data.train.min_length(), 1);
  EXPECT_GT(data.train.max_length(), 1);
  const core::StatusOr<core::RepairOutcome> repaired =
      core::TryRepairTrainTest(data.train, data.test, core::ValidateOptions{},
                               7);
  ASSERT_TRUE(repaired.ok());
  EXPECT_GT(repaired->resampled_series, 0);
  EXPECT_GE(repaired->train.min_length(), 2);
  EXPECT_GE(repaired->test.min_length(), 2);
}

TEST(ScenarioCatalog, SingleChannelScenarioIsUnivariate) {
  const TrainTest data = MakeScenarioDataset("single_channel", 7);
  EXPECT_EQ(data.train.num_channels(), 1);
}

}  // namespace
}  // namespace tsaug::data
