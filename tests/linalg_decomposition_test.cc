#include "linalg/decomposition.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace tsaug::linalg {
namespace {

Matrix RandomSpd(int n, core::Rng& rng) {
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = rng.Normal();
  }
  Matrix spd = MatMulTransposeA(a, a);
  AddDiagonal(spd, 0.5);
  return spd;
}

TEST(Cholesky, FactorReconstructs) {
  core::Rng rng(1);
  Matrix a = RandomSpd(6, rng);
  Matrix l = a;
  ASSERT_TRUE(CholeskyFactor(l));
  EXPECT_LT(MaxAbsDiff(MatMulTransposeB(l, l), a), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  EXPECT_FALSE(CholeskyFactor(a));
}

TEST(CholeskySolve, SolvesLinearSystem) {
  core::Rng rng(2);
  Matrix a = RandomSpd(5, rng);
  Matrix x_true(5, 2);
  for (double& v : x_true.data()) v = rng.Normal();
  Matrix b = MatMul(a, x_true);
  Matrix x = CholeskySolve(a, b);
  ASSERT_FALSE(x.empty());
  EXPECT_LT(MaxAbsDiff(x, x_true), 1e-8);
}

TEST(CholeskySolveJittered, HandlesSemiDefinite) {
  // Rank-1 PSD matrix; plain Cholesky fails, jitter rescues it.
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  Matrix b = Matrix::FromRows({{1}, {1}});
  Matrix x = CholeskySolveJittered(a, b);
  ASSERT_FALSE(x.empty());
  // Solution of (A + eps I) x = b stays close to a least-norm solution.
  Matrix residual = Sub(MatMul(a, x), b);
  EXPECT_LT(MaxAbsDiff(residual, Matrix(2, 1)), 1e-3);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  core::Rng rng(3);
  Matrix a = RandomSpd(8, rng);
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  // A = V diag(w) V^T.
  Matrix vw = v;
  for (int i = 0; i < vw.rows(); ++i) {
    for (int j = 0; j < vw.cols(); ++j) vw(i, j) *= w[static_cast<size_t>(j)];
  }
  EXPECT_LT(MaxAbsDiff(MatMulTransposeB(vw, v), a), 1e-8);
}

TEST(SymmetricEigen, VectorsOrthonormal) {
  core::Rng rng(4);
  Matrix a = RandomSpd(7, rng);
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  EXPECT_LT(MaxAbsDiff(MatMulTransposeA(v, v), Matrix::Identity(7)), 1e-9);
}

TEST(SymmetricEigen, EigenvaluesAscending) {
  core::Rng rng(5);
  Matrix a = RandomSpd(9, rng);
  std::vector<double> w;
  Matrix v;
  SymmetricEigen(a, &w, &v);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i - 1], w[i]);
}

TEST(SampleCovariance, MatchesHandComputation) {
  // Two points (0,0), (2,2): mean (1,1); cov (denominator n) = [[1,1],[1,1]].
  Matrix x = Matrix::FromRows({{0, 0}, {2, 2}});
  Matrix cov = SampleCovariance(x);
  EXPECT_LT(MaxAbsDiff(cov, Matrix::FromRows({{1, 1}, {1, 1}})), 1e-12);
}

TEST(ShrinkageCovariance, InterpolatesTowardScaledIdentity) {
  core::Rng rng(6);
  // Few samples in high dimension: shrinkage should be substantial and the
  // result SPD (Cholesky succeeds) where the sample covariance is singular.
  Matrix x(4, 12);
  for (double& v : x.data()) v = rng.Normal();
  double gamma = 0.0;
  Matrix sigma = ShrinkageCovariance(x, &gamma);
  EXPECT_GT(gamma, 0.0);
  EXPECT_LE(gamma, 1.0);
  Matrix l = sigma;
  EXPECT_TRUE(CholeskyFactor(l));
}

TEST(ShrinkageCovariance, NearZeroShrinkageForManyAnisotropicSamples) {
  // With abundant samples of strongly anisotropic data, OAS should trust
  // the sample covariance (shrinking toward a scaled identity would be
  // badly biased, and the estimator knows it).
  core::Rng rng(7);
  Matrix x(4000, 3);
  for (int i = 0; i < x.rows(); ++i) {
    x(i, 0) = rng.Normal(0, 10.0);
    x(i, 1) = rng.Normal(0, 1.0);
    x(i, 2) = rng.Normal(0, 0.1);
  }
  double gamma = 1.0;
  Matrix sigma = ShrinkageCovariance(x, &gamma);
  EXPECT_LT(gamma, 0.05);
  EXPECT_NEAR(sigma(0, 0), 100.0, 10.0);
}

}  // namespace
}  // namespace tsaug::linalg
