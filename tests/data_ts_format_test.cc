#include "data/ts_format.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace tsaug::data {
namespace {

constexpr char kSample[] = R"(# A toy UEA-style file
@problemName Toy
@timeStamps false
@univariate false
@classLabel true cat dog
@data
1.0,2.0,3.0:10,20,30:cat
4.0,?,6.0:40,50,60:dog
7,8,9:70,80,90:cat
)";

TEST(ReadTsFile, ParsesMultivariateCases) {
  std::istringstream in(kSample);
  core::Dataset dataset;
  std::string error;
  ASSERT_TRUE(ReadTsFile(in, &dataset, &error)) << error;
  ASSERT_EQ(dataset.size(), 3);
  EXPECT_EQ(dataset.num_classes(), 2);
  EXPECT_EQ(dataset.num_channels(), 2);
  EXPECT_EQ(dataset.max_length(), 3);
  EXPECT_DOUBLE_EQ(dataset.series(0).at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dataset.series(0).at(1, 2), 30.0);
}

TEST(ReadTsFile, VocabularyOrderDefinesLabels) {
  std::istringstream in(kSample);
  core::Dataset dataset;
  ASSERT_TRUE(ReadTsFile(in, &dataset));
  EXPECT_EQ(dataset.label(0), 0);  // cat
  EXPECT_EQ(dataset.label(1), 1);  // dog
  EXPECT_EQ(dataset.label(2), 0);
}

TEST(ReadTsFile, QuestionMarkBecomesNaN) {
  std::istringstream in(kSample);
  core::Dataset dataset;
  ASSERT_TRUE(ReadTsFile(in, &dataset));
  EXPECT_TRUE(std::isnan(dataset.series(1).at(0, 1)));
}

TEST(ReadTsFile, NoVocabularyUsesFirstSeenOrder) {
  std::istringstream in("@data\n1,2:zebra\n3,4:ant\n5,6:zebra\n");
  core::Dataset dataset;
  ASSERT_TRUE(ReadTsFile(in, &dataset));
  EXPECT_EQ(dataset.label(0), 0);
  EXPECT_EQ(dataset.label(1), 1);
  EXPECT_EQ(dataset.label(2), 0);
}

TEST(ReadTsFile, VariableLengthDimensionsPadded) {
  std::istringstream in("@data\n1,2,3:9:x\n");
  core::Dataset dataset;
  ASSERT_TRUE(ReadTsFile(in, &dataset));
  EXPECT_EQ(dataset.series(0).length(), 3);
  EXPECT_DOUBLE_EQ(dataset.series(0).at(1, 0), 9.0);
  EXPECT_TRUE(std::isnan(dataset.series(0).at(1, 1)));
}

TEST(ReadTsFile, EmptyDimensionBecomesAllMissingChannel) {
  // A case may omit one dimension entirely (":"-delimited empty field);
  // the channel survives as all-NaN at the case length, so preflight
  // validation can diagnose it rather than the parser guessing.
  std::istringstream in("@data\n:1,2:x\n");
  core::Dataset dataset;
  std::string error;
  ASSERT_TRUE(ReadTsFile(in, &dataset, &error)) << error;
  ASSERT_EQ(dataset.num_channels(), 2);
  ASSERT_EQ(dataset.series(0).length(), 2);
  EXPECT_TRUE(std::isnan(dataset.series(0).at(0, 0)));
  EXPECT_TRUE(std::isnan(dataset.series(0).at(0, 1)));
  EXPECT_DOUBLE_EQ(dataset.series(0).at(1, 0), 1.0);
}

TEST(ReadTsFile, AllDimensionsEmptyIsRejected) {
  std::istringstream in("@data\n:::x\n");
  core::Dataset dataset;
  std::string error;
  EXPECT_FALSE(ReadTsFile(in, &dataset, &error));
  EXPECT_NE(error.find("empty case"), std::string::npos);
}

TEST(ReadTsFile, TrailingMissingRunIsPreserved) {
  // A run of '?' at the end of a dimension must not be trimmed away:
  // the case keeps its declared length with NaNs in the tail.
  std::istringstream in("@data\n1,2,?,?:9,?,?,?:x\n");
  core::Dataset dataset;
  std::string error;
  ASSERT_TRUE(ReadTsFile(in, &dataset, &error)) << error;
  ASSERT_EQ(dataset.series(0).length(), 4);
  EXPECT_DOUBLE_EQ(dataset.series(0).at(0, 1), 2.0);
  EXPECT_TRUE(std::isnan(dataset.series(0).at(0, 2)));
  EXPECT_TRUE(std::isnan(dataset.series(0).at(0, 3)));
  EXPECT_TRUE(std::isnan(dataset.series(0).at(1, 3)));
}

TEST(ReadTsFile, SingleTimestepCaseParses) {
  std::istringstream in("@data\n5:7:x\n1:2:y\n");
  core::Dataset dataset;
  std::string error;
  ASSERT_TRUE(ReadTsFile(in, &dataset, &error)) << error;
  ASSERT_EQ(dataset.size(), 2);
  EXPECT_EQ(dataset.num_channels(), 2);
  EXPECT_EQ(dataset.max_length(), 1);
  EXPECT_DOUBLE_EQ(dataset.series(0).at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(dataset.series(0).at(1, 0), 7.0);
}

TEST(WriteTsFile, SingleTimestepAndTrailingMissingRoundTrip) {
  core::Dataset original;
  original.Add(core::TimeSeries::FromChannels({{1.5}, {std::nan("")}}), 0);
  original.Add(core::TimeSeries::FromChannels({{2.5}, {3.5}}), 1);
  std::stringstream buffer;
  WriteTsFile(original, "OneStep", buffer);
  core::Dataset loaded;
  std::string error;
  ASSERT_TRUE(ReadTsFile(buffer, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 2);
  EXPECT_EQ(loaded.max_length(), 1);
  EXPECT_DOUBLE_EQ(loaded.series(0).at(0, 0), 1.5);
  EXPECT_TRUE(std::isnan(loaded.series(0).at(1, 0)));
}

TEST(ReadTsFile, RejectsDataBeforeDirective) {
  std::istringstream in("1,2:label\n");
  core::Dataset dataset;
  std::string error;
  EXPECT_FALSE(ReadTsFile(in, &dataset, &error));
  EXPECT_NE(error.find("@data"), std::string::npos);
}

TEST(ReadTsFile, RejectsBadValues) {
  std::istringstream in("@data\n1,banana:x\n");
  core::Dataset dataset;
  std::string error;
  EXPECT_FALSE(ReadTsFile(in, &dataset, &error));
  EXPECT_NE(error.find("banana"), std::string::npos);
}

TEST(ReadTsFile, RejectsEmptyFile) {
  std::istringstream in("@data\n");
  core::Dataset dataset;
  EXPECT_FALSE(ReadTsFile(in, &dataset));
}

TEST(WriteTsFile, RoundTripsThroughReader) {
  core::Dataset original;
  original.Add(core::TimeSeries::FromChannels({{1, 2}, {3, std::nan("")}}), 0);
  original.Add(core::TimeSeries::FromChannels({{5, 6}, {7, 8}}), 1);

  std::stringstream buffer;
  WriteTsFile(original, "RoundTrip", buffer);
  core::Dataset loaded;
  std::string error;
  ASSERT_TRUE(ReadTsFile(buffer, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 2);
  EXPECT_EQ(loaded.label(0), 0);
  EXPECT_EQ(loaded.label(1), 1);
  EXPECT_DOUBLE_EQ(loaded.series(0).at(0, 1), 2.0);
  EXPECT_TRUE(std::isnan(loaded.series(0).at(1, 1)));
  EXPECT_DOUBLE_EQ(loaded.series(1).at(1, 0), 7.0);
}

TEST(LoadUeaProblem, MissingFilesReportError) {
  core::Dataset train;
  core::Dataset test;
  std::string error;
  EXPECT_FALSE(LoadUeaProblem("/nonexistent", "Nope", &train, &test, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace tsaug::data
