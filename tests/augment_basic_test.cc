// Tests for the taxonomy's basic branch: noise injection (Eq. 6), time- and
// frequency-domain transforms, and decomposition-based augmentation.
#include <cmath>

#include <gtest/gtest.h>

#include "augment/basic_time.h"
#include "augment/decompose.h"
#include "augment/frequency.h"
#include "augment/noise.h"
#include "core/stats.h"

namespace tsaug::augment {
namespace {

using core::TimeSeries;

TimeSeries Wave(int channels = 2, int length = 64, double amp = 1.0) {
  TimeSeries s(channels, length);
  for (int c = 0; c < channels; ++c) {
    for (int t = 0; t < length; ++t) {
      s.at(c, t) = amp * std::sin(0.3 * t + c) + 0.1 * c;
    }
  }
  return s;
}

TEST(NoiseInjection, NameEncodesLevel) {
  EXPECT_EQ(NoiseInjection(1.0).name(), "noise_1.0");
  EXPECT_EQ(NoiseInjection(5.0).name(), "noise_5.0");
}

TEST(NoiseInjection, NoiseScalesWithChannelStd) {
  // Channel 0 has std ~10x channel 1; injected noise must follow (Eq. 6).
  TimeSeries s(2, 512);
  core::Rng data_rng(1);
  for (int t = 0; t < 512; ++t) {
    s.at(0, t) = data_rng.Normal(0.0, 10.0);
    s.at(1, t) = data_rng.Normal(0.0, 1.0);
  }
  NoiseInjection noise(1.0);
  core::Rng rng(2);
  const TimeSeries noisy = noise.Transform(s, rng);
  double delta0 = 0.0;
  double delta1 = 0.0;
  for (int t = 0; t < 512; ++t) {
    delta0 += std::pow(noisy.at(0, t) - s.at(0, t), 2);
    delta1 += std::pow(noisy.at(1, t) - s.at(1, t), 2);
  }
  const double ratio = std::sqrt(delta0 / delta1);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(NoiseInjection, HigherLevelMoreNoise) {
  const TimeSeries s = Wave();
  core::Rng rng1(3);
  core::Rng rng5(3);
  const TimeSeries n1 = NoiseInjection(1.0).Transform(s, rng1);
  const TimeSeries n5 = NoiseInjection(5.0).Transform(s, rng5);
  double d1 = 0.0;
  double d5 = 0.0;
  for (size_t i = 0; i < s.values().size(); ++i) {
    d1 += std::pow(n1.values()[i] - s.values()[i], 2);
    d5 += std::pow(n5.values()[i] - s.values()[i], 2);
  }
  EXPECT_GT(d5, 4.0 * d1);
}

TEST(NoiseInjection, PreservesNaN) {
  TimeSeries s = Wave(1, 16);
  s.at(0, 3) = std::nan("");
  core::Rng rng(4);
  const TimeSeries noisy = NoiseInjection(1.0).Transform(s, rng);
  EXPECT_TRUE(std::isnan(noisy.at(0, 3)));
  EXPECT_NE(noisy.at(0, 0), s.at(0, 0));
}

TEST(Scaling, ScalesChannelsIndependently) {
  const TimeSeries s = Wave(3, 32);
  core::Rng rng(5);
  const TimeSeries scaled = Scaling(0.2).Transform(s, rng);
  for (int c = 0; c < 3; ++c) {
    // Per-channel scaling: the ratio is constant along t where s != 0.
    const double ratio = scaled.at(c, 5) / s.at(c, 5);
    for (int t = 0; t < 32; ++t) {
      if (std::fabs(s.at(c, t)) > 1e-6) {
        EXPECT_NEAR(scaled.at(c, t) / s.at(c, t), ratio, 1e-9);
      }
    }
  }
}

TEST(Rotation, PreservesChannelNorms) {
  // Orthogonal rotation preserves the per-step channel-vector norm.
  const TimeSeries s = Wave(4, 32);
  core::Rng rng(6);
  const TimeSeries rotated = Rotation(0.8).Transform(s, rng);
  for (int t = 0; t < 32; ++t) {
    double before = 0.0;
    double after = 0.0;
    for (int c = 0; c < 4; ++c) {
      before += s.at(c, t) * s.at(c, t);
      after += rotated.at(c, t) * rotated.at(c, t);
    }
    EXPECT_NEAR(before, after, 1e-9);
  }
}

TEST(Rotation, UnivariateFlipsSign) {
  const TimeSeries s = Wave(1, 16);
  core::Rng rng(7);
  const TimeSeries flipped = Rotation().Transform(s, rng);
  for (int t = 0; t < 16; ++t) EXPECT_DOUBLE_EQ(flipped.at(0, t), -s.at(0, t));
}

TEST(WindowSlicing, KeepsLengthAndRange) {
  const TimeSeries s = Wave(2, 50);
  core::Rng rng(8);
  const TimeSeries sliced = WindowSlicing(0.8).Transform(s, rng);
  EXPECT_EQ(sliced.length(), 50);
  EXPECT_EQ(sliced.num_channels(), 2);
  // Values come from the original range.
  for (double v : sliced.values()) {
    EXPECT_GE(v, -1.2);
    EXPECT_LE(v, 1.3);
  }
}

TEST(Permutation, IsAPermutationOfValues) {
  const TimeSeries s = Wave(1, 40);
  core::Rng rng(9);
  const TimeSeries permuted = Permutation(4).Transform(s, rng);
  std::vector<double> a = s.values();
  std::vector<double> b = permuted.values();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Masking, ZeroesAWindow) {
  const TimeSeries s = Wave(2, 40, 2.0);
  core::Rng rng(10);
  const TimeSeries masked = Masking(0.25).Transform(s, rng);
  int zeroed = 0;
  for (int t = 0; t < 40; ++t) {
    if (masked.at(0, t) == 0.0 && masked.at(1, t) == 0.0) ++zeroed;
  }
  EXPECT_EQ(zeroed, 10);
}

TEST(Dropout, ZeroesApproximatelyRateFraction) {
  const TimeSeries s = Wave(2, 500, 2.0);
  core::Rng rng(11);
  const TimeSeries dropped = Dropout(0.2).Transform(s, rng);
  int zeroed = 0;
  for (double v : dropped.values()) zeroed += v == 0.0 ? 1 : 0;
  EXPECT_NEAR(zeroed / 1000.0, 0.2, 0.05);
}

TEST(MagnitudeWarp, SmoothMultiplicativeEnvelope) {
  const TimeSeries s = Wave(1, 64, 1.0);
  core::Rng rng(12);
  const TimeSeries warped = MagnitudeWarp(0.3, 4).Transform(s, rng);
  EXPECT_EQ(warped.length(), 64);
  // Envelope stays within a plausible band around 1 for sigma=0.3.
  for (int t = 0; t < 64; ++t) {
    if (std::fabs(s.at(0, t)) > 0.2) {
      const double ratio = warped.at(0, t) / s.at(0, t);
      EXPECT_GT(ratio, -0.5);
      EXPECT_LT(ratio, 2.5);
    }
  }
}

TEST(TimeWarp, PreservesLengthAndEndpointNeighborhood) {
  const TimeSeries s = Wave(2, 64);
  core::Rng rng(13);
  const TimeSeries warped = TimeWarp(0.3, 4).Transform(s, rng);
  EXPECT_EQ(warped.length(), 64);
  EXPECT_NEAR(warped.at(0, 0), s.at(0, 0), 1e-9);  // warp starts at 0
}

TEST(WindowWarp, KeepsLength) {
  const TimeSeries s = Wave(2, 60);
  core::Rng rng(14);
  const TimeSeries warped = WindowWarp(0.2).Transform(s, rng);
  EXPECT_EQ(warped.length(), 60);
  EXPECT_EQ(warped.num_channels(), 2);
}

TEST(FrequencyPerturbation, OutputRealAndClose) {
  const TimeSeries s = Wave(2, 48);
  core::Rng rng(15);
  const TimeSeries perturbed =
      FrequencyPerturbation(0.05, 0.05).Transform(s, rng);
  EXPECT_EQ(perturbed.length(), 48);
  double max_delta = 0.0;
  for (size_t i = 0; i < s.values().size(); ++i) {
    EXPECT_TRUE(std::isfinite(perturbed.values()[i]));
    max_delta = std::max(max_delta,
                         std::fabs(perturbed.values()[i] - s.values()[i]));
  }
  EXPECT_GT(max_delta, 0.0);   // it did something
  EXPECT_LT(max_delta, 1.0);   // but stayed close for small sigmas
}

TEST(FrequencyPerturbation, ZeroPhaseSigmaKeepsSpectralShape) {
  const TimeSeries s = Wave(1, 32);
  core::Rng rng(16);
  const TimeSeries perturbed =
      FrequencyPerturbation(1e-6, 1e-9).Transform(s, rng);
  for (size_t i = 0; i < s.values().size(); ++i) {
    EXPECT_NEAR(perturbed.values()[i], s.values()[i], 1e-3);
  }
}

TEST(SpectrogramMasking, ProducesFiniteSeriesOfSameShape) {
  const TimeSeries s = Wave(2, 80);
  core::Rng rng(17);
  const TimeSeries masked = SpectrogramMasking().Transform(s, rng);
  EXPECT_EQ(masked.length(), 80);
  for (double v : masked.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(MovingAverageDecompose, TrendPlusResidualIsIdentity) {
  std::vector<double> signal(50);
  for (int t = 0; t < 50; ++t) signal[static_cast<size_t>(t)] = 0.1 * t + std::sin(0.5 * t);
  const Decomposition parts = MovingAverageDecompose(signal, 9);
  for (int t = 0; t < 50; ++t) {
    EXPECT_NEAR(parts.trend[static_cast<size_t>(t)] + parts.residual[static_cast<size_t>(t)], signal[static_cast<size_t>(t)], 1e-12);
  }
}

TEST(MovingAverageDecompose, TrendTracksLinearSignalExactlyInInterior) {
  std::vector<double> signal(30);
  for (int t = 0; t < 30; ++t) signal[static_cast<size_t>(t)] = 2.0 * t;
  const Decomposition parts = MovingAverageDecompose(signal, 5);
  for (int t = 2; t < 28; ++t) EXPECT_NEAR(parts.trend[static_cast<size_t>(t)], signal[static_cast<size_t>(t)], 1e-9);
}

TEST(DecompositionAugmenter, PreservesTrendShape) {
  // A strongly trended series: the augmented copy must track the trend.
  TimeSeries s(1, 60);
  core::Rng data_rng(18);
  for (int t = 0; t < 60; ++t) s.at(0, t) = 0.5 * t + data_rng.Normal(0, 0.3);
  core::Rng rng(19);
  const TimeSeries augmented =
      DecompositionAugmenter(9, 6).Transform(s, rng);
  for (int t = 5; t < 55; ++t) {
    EXPECT_NEAR(augmented.at(0, t), 0.5 * t, 3.0);
  }
}

}  // namespace
}  // namespace tsaug::augment
