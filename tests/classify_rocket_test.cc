#include "classify/rocket.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace tsaug::classify {
namespace {

data::TrainTest TwoClassData(std::uint64_t seed = 3, double separation = 1.0) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {20, 20};
  spec.test_counts = {10, 10};
  spec.num_channels = 3;
  spec.length = 48;
  spec.class_separation = separation;
  spec.seed = seed;
  return data::MakeSynthetic(spec);
}

TEST(RocketTransform, KernelGeometryWithinSpec) {
  RocketTransform transform(200, 42);
  transform.Fit(/*num_channels=*/4, /*series_length=*/64);
  ASSERT_EQ(transform.kernels().size(), 200u);
  for (const RocketKernel& k : transform.kernels()) {
    EXPECT_TRUE(k.length == 7 || k.length == 9 || k.length == 11);
    EXPECT_GE(k.dilation, 1);
    EXPECT_LE((k.length - 1) * k.dilation, 2 * 63);
    EXPECT_GE(k.bias, -1.0);
    EXPECT_LE(k.bias, 1.0);
    EXPECT_GE(k.channels.size(), 1u);
    EXPECT_LE(static_cast<int>(k.channels.size()), 4);
    // Weights are mean-centred per kernel.
    double mean = 0.0;
    for (double w : k.weights) mean += w;
    EXPECT_NEAR(mean / static_cast<double>(k.weights.size()), 0.0, 1e-12);
  }
}

TEST(RocketTransform, FeaturesShapeAndPpvRange) {
  RocketTransform transform(50, 1);
  transform.Fit(2, 32);
  nn::Tensor x({5, 2, 32});
  core::Rng rng(2);
  for (double& v : x.data()) v = rng.Normal();
  const linalg::Matrix features = transform.Transform(x);
  EXPECT_EQ(features.rows(), 5);
  EXPECT_EQ(features.cols(), 100);
  for (int i = 0; i < features.rows(); ++i) {
    for (int k = 0; k < 50; ++k) {
      EXPECT_GE(features(i, 2 * k), 0.0);   // PPV
      EXPECT_LE(features(i, 2 * k), 1.0);
    }
  }
}

TEST(RocketTransform, DeterministicInSeed) {
  RocketTransform a(30, 9);
  RocketTransform b(30, 9);
  a.Fit(3, 40);
  b.Fit(3, 40);
  nn::Tensor x({2, 3, 40});
  core::Rng rng(3);
  for (double& v : x.data()) v = rng.Normal();
  EXPECT_EQ(a.Transform(x), b.Transform(x));
}

TEST(RocketTransform, ShortSeriesStillWork) {
  // PenDigits has length 8 < kernel length 11: kernels must adapt.
  RocketTransform transform(40, 5);
  transform.Fit(2, 8);
  nn::Tensor x({3, 2, 8});
  core::Rng rng(4);
  for (double& v : x.data()) v = rng.Normal();
  const linalg::Matrix features = transform.Transform(x);
  for (double v : features.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RocketClassifier, LearnsSeparableClasses) {
  const data::TrainTest data = TwoClassData();
  RocketClassifier clf(/*num_kernels=*/300, /*seed=*/7);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.85);
}

TEST(RocketClassifier, MulticlassImbalanced) {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.train_counts = {24, 12, 6, 4};
  spec.test_counts = {8, 6, 4, 4};
  spec.num_channels = 2;
  spec.length = 40;
  spec.seed = 11;
  const data::TrainTest data = data::MakeSynthetic(spec);
  RocketClassifier clf(300, 3);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.6);
}

TEST(RocketClassifier, HandlesVariableLengthAndMissing) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {10, 10};
  spec.test_counts = {5, 5};
  spec.num_channels = 2;
  spec.length = 30;
  spec.missing_prop = 0.2;
  spec.seed = 13;
  const data::TrainTest data = data::MakeSynthetic(spec);
  RocketClassifier clf(150, 1);
  clf.Fit(data.train);
  const std::vector<int> predictions = clf.Predict(data.test);
  EXPECT_EQ(predictions.size(), 10u);
  for (int p : predictions) EXPECT_TRUE(p == 0 || p == 1);
}

TEST(RocketClassifier, MoreKernelsHelpOnHardData) {
  const data::TrainTest data = TwoClassData(21, /*separation=*/0.35);
  RocketClassifier small(20, 5);
  RocketClassifier large(500, 5);
  small.Fit(data.train);
  large.Fit(data.train);
  // Not strictly monotone in general, but on this task the 25x kernel
  // count should not do worse.
  EXPECT_GE(large.Score(data.test) + 0.1, small.Score(data.test));
}

}  // namespace
}  // namespace tsaug::classify
