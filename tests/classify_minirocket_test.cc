#include "classify/minirocket.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/synthetic.h"

namespace tsaug::classify {
namespace {

TEST(MiniRocketTransform, EightyFourKernels) {
  const auto positions = MiniRocketTransform::KernelPositions();
  EXPECT_EQ(positions.size(), 84u);
  std::set<std::array<int, 3>> unique(positions.begin(), positions.end());
  EXPECT_EQ(unique.size(), 84u);
  for (const auto& p : positions) {
    EXPECT_LT(p[0], p[1]);
    EXPECT_LT(p[1], p[2]);
    EXPECT_GE(p[0], 0);
    EXPECT_LT(p[2], 9);
  }
}

nn::Tensor RandomTensor(int n, int c, int t, std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Tensor x({n, c, t});
  for (double& v : x.data()) v = rng.Normal();
  return x;
}

TEST(MiniRocketTransform, FeatureCountNearBudget) {
  MiniRocketTransform transform(1000, 1);
  transform.Fit(RandomTensor(4, 2, 64, 2));
  EXPECT_GE(transform.num_features(), 84);
  // Budget is distributed in whole biases per (kernel, dilation) pair.
  EXPECT_LE(transform.num_features(), 1400);
}

TEST(MiniRocketTransform, FeaturesArePpvInUnitInterval) {
  MiniRocketTransform transform(200, 3);
  const nn::Tensor train = RandomTensor(6, 2, 48, 4);
  transform.Fit(train);
  const linalg::Matrix features = transform.Transform(train);
  EXPECT_EQ(features.rows(), 6);
  EXPECT_EQ(features.cols(), transform.num_features());
  for (double v : features.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MiniRocketTransform, DeterministicInSeed) {
  const nn::Tensor train = RandomTensor(4, 3, 32, 5);
  MiniRocketTransform a(200, 9);
  MiniRocketTransform b(200, 9);
  a.Fit(train);
  b.Fit(train);
  EXPECT_EQ(a.Transform(train), b.Transform(train));
}

TEST(MiniRocketTransform, ShortSeriesWork) {
  MiniRocketTransform transform(100, 6);
  const nn::Tensor train = RandomTensor(3, 1, 8, 7);  // PenDigits-length
  transform.Fit(train);
  const linalg::Matrix features = transform.Transform(train);
  for (double v : features.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(MiniRocketClassifier, LearnsSeparableClasses) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {20, 20};
  spec.test_counts = {10, 10};
  spec.num_channels = 3;
  spec.length = 48;
  spec.seed = 8;
  const data::TrainTest data = data::MakeSynthetic(spec);
  MiniRocketClassifier clf(500, 11);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.85);
}

TEST(MiniRocketClassifier, MulticlassImbalanced) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.train_counts = {18, 8, 5};
  spec.test_counts = {6, 5, 4};
  spec.num_channels = 2;
  spec.length = 32;
  spec.seed = 12;
  const data::TrainTest data = data::MakeSynthetic(spec);
  MiniRocketClassifier clf(500, 2);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.6);
}

}  // namespace
}  // namespace tsaug::classify
