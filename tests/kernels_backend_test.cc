// Tests for the kernel-dispatch seam's backend selection: the
// TSAUG_BACKEND spec parser's edge cases (exposed as ParseBackendSpec
// precisely so they are testable without re-execing the process) and the
// SetBackend / ActiveBackend pair under concurrency. Runs under the
// "parallel" ctest label so the TSan leg race-checks the lock-free
// backend word.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernels/kernels.h"

namespace tsaug::core::kernels {
namespace {

TEST(ParseBackendSpecTest, ExactMatchesSelectForcedBackends) {
  EXPECT_EQ(ParseBackendSpec("scalar"), BackendSpec::kForceScalar);
  EXPECT_EQ(ParseBackendSpec("simd"), BackendSpec::kForceSimd);
}

TEST(ParseBackendSpecTest, NullMeansAuto) {
  // getenv returns nullptr when TSAUG_BACKEND is unset.
  EXPECT_EQ(ParseBackendSpec(nullptr), BackendSpec::kAuto);
}

TEST(ParseBackendSpecTest, EmptyStringMeansAuto) {
  // `TSAUG_BACKEND= ./binary` exports the variable with an empty value;
  // that must behave exactly like an unset variable.
  EXPECT_EQ(ParseBackendSpec(""), BackendSpec::kAuto);
}

TEST(ParseBackendSpecTest, MatchingIsCaseSensitive) {
  // The spec is documented as exact lowercase; mixed case falls back to
  // auto-detection rather than half-recognising the intent.
  EXPECT_EQ(ParseBackendSpec("SIMD"), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("Simd"), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("Scalar"), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("SCALAR"), BackendSpec::kAuto);
}

TEST(ParseBackendSpecTest, UnknownTokensMeanAuto) {
  EXPECT_EQ(ParseBackendSpec("avx2"), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("sse"), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("0"), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("scalar,simd"), BackendSpec::kAuto);
}

TEST(ParseBackendSpecTest, WhitespaceIsNotTrimmed) {
  EXPECT_EQ(ParseBackendSpec(" scalar"), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("scalar "), BackendSpec::kAuto);
  EXPECT_EQ(ParseBackendSpec("simd\n"), BackendSpec::kAuto);
}

TEST(BackendTest, SetBackendScalarTakesEffect) {
  const Backend applied = SetBackend(Backend::kScalar);
  EXPECT_EQ(applied, Backend::kScalar);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_EQ(&Active(), &ScalarKernels());
}

TEST(BackendTest, SetBackendSimdDegradesToScalarWhenUnavailable) {
  const Backend applied = SetBackend(Backend::kSimd);
  if (SimdAvailable()) {
    EXPECT_EQ(applied, Backend::kSimd);
    EXPECT_EQ(ActiveBackend(), Backend::kSimd);
    EXPECT_EQ(&Active(), SimdKernels());
  } else {
    EXPECT_EQ(applied, Backend::kScalar);
    EXPECT_EQ(ActiveBackend(), Backend::kScalar);
    EXPECT_EQ(&Active(), &ScalarKernels());
  }
  SetBackend(Backend::kScalar);
}

TEST(BackendTest, BackendNamesAreStable) {
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kSimd), "simd");
}

// Hammers the lock-free backend word from writer and reader threads at
// once. The contract under test: every reader observes a valid backend
// whose kernel table is fully usable (never a torn/uninitialised table),
// and the final state is whatever some writer last stored. TSan (the
// "parallel" label's sanitizer leg) checks the memory-order discipline.
TEST(BackendTest, ConcurrentSetAndReadStaysCoherent) {
  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr int kIters = 2000;
  std::atomic<bool> start{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&start, w] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kIters; ++i) {
        SetBackend((i + w) % 2 == 0 ? Backend::kScalar : Backend::kSimd);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&start, &bad] {
      while (!start.load(std::memory_order_acquire)) {}
      double x[4] = {1.0, 2.0, 3.0, 4.0};
      const double y[4] = {5.0, 6.0, 7.0, 8.0};
      for (int i = 0; i < kIters; ++i) {
        const Backend b = ActiveBackend();
        if (b != Backend::kScalar && b != Backend::kSimd) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
        const KernelTable& kt = Active();
        // Exercise a real entry through whichever table was observed.
        kt.axpy(0.0, y, x, 4);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  const Backend final_backend = ActiveBackend();
  EXPECT_TRUE(final_backend == Backend::kScalar ||
              final_backend == Backend::kSimd);
  SetBackend(Backend::kScalar);
}

}  // namespace
}  // namespace tsaug::core::kernels
