#include "classify/inception_time.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace tsaug::classify {
namespace {

InceptionTimeConfig TinyConfig() {
  InceptionTimeConfig config;
  config.num_filters = 4;
  config.depth = 3;
  config.kernel_sizes = {4, 8};
  config.bottleneck_channels = 4;
  config.ensemble_size = 1;
  config.trainer.max_epochs = 40;
  config.trainer.early_stopping_patience = 12;
  config.trainer.batch_size = 16;
  config.trainer.learning_rate = 5e-3;  // skip LR finder in unit tests
  return config;
}

TEST(InceptionModule, OutputShape) {
  core::Rng rng(1);
  InceptionTimeConfig config = TinyConfig();
  InceptionModule module(3, config, rng);
  EXPECT_EQ(module.out_channels(), 4 * 3);  // 2 conv branches + pool branch
  nn::Variable x(nn::Tensor({2, 3, 20}, 0.5));
  nn::Variable y = module.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 12, 20}));
}

TEST(InceptionModule, UnivariateSkipsBottleneck) {
  core::Rng rng(2);
  InceptionTimeConfig config = TinyConfig();
  InceptionModule module(1, config, rng);
  nn::Variable x(nn::Tensor({1, 1, 16}, 1.0));
  EXPECT_EQ(module.Forward(x).shape(), (std::vector<int>{1, 12, 16}));
}

TEST(InceptionNetwork, LogitsShapeAndGradFlow) {
  core::Rng rng(3);
  InceptionTimeConfig config = TinyConfig();
  InceptionNetwork net(2, 3, config, rng);
  nn::Tensor x({4, 2, 24});
  core::Rng data_rng(4);
  for (double& v : x.data()) v = data_rng.Normal();
  nn::Variable logits = net.Forward(nn::Variable(x));
  EXPECT_EQ(logits.shape(), (std::vector<int>{4, 3}));

  nn::Variable loss = nn::SoftmaxCrossEntropy(logits, {0, 1, 2, 0});
  loss.Backward();
  int touched = 0;
  for (const nn::Variable& p : net.AllParameters()) {
    double norm = 0.0;
    for (size_t i = 0; i < p.grad().numel(); ++i) norm += std::abs(p.grad()[i]);
    touched += norm > 0.0 ? 1 : 0;
  }
  // Every parameter tensor should receive gradient.
  EXPECT_EQ(touched, static_cast<int>(net.AllParameters().size()));
}

TEST(InceptionNetwork, ResidualNetworkHasShortcuts) {
  core::Rng rng(5);
  InceptionTimeConfig with = TinyConfig();
  InceptionTimeConfig without = TinyConfig();
  without.use_residual = false;
  InceptionNetwork net_with(2, 2, with, rng);
  InceptionNetwork net_without(2, 2, without, rng);
  EXPECT_GT(net_with.AllParameters().size(),
            net_without.AllParameters().size());
}

TEST(InceptionTimeClassifier, LearnsSeparableClasses) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {18, 18};
  spec.test_counts = {8, 8};
  spec.num_channels = 2;
  spec.length = 32;
  spec.class_separation = 1.5;
  spec.seed = 6;
  const data::TrainTest data = data::MakeSynthetic(spec);

  InceptionTimeClassifier clf(TinyConfig(), /*seed=*/1);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.7);
  ASSERT_EQ(clf.train_results().size(), 1u);
  EXPECT_GT(clf.train_results()[0].best_val_accuracy, 0.5);
}

TEST(InceptionTimeClassifier, FitWithValidationUsesGivenSplit) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {12, 12};
  spec.test_counts = {6, 6};
  spec.num_channels = 1;
  spec.length = 24;
  spec.class_separation = 1.5;
  spec.seed = 8;
  const data::TrainTest data = data::MakeSynthetic(spec);

  core::Rng rng(9);
  const auto [train_part, val_part] = data.train.StratifiedSplit(2.0 / 3.0, rng);
  InceptionTimeClassifier clf(TinyConfig(), 2);
  clf.FitWithValidation(train_part, val_part);
  const std::vector<int> predictions = clf.Predict(data.test);
  EXPECT_EQ(predictions.size(), 12u);
}

TEST(Trainer, EarlyStoppingRestoresBestState) {
  // The trainer must never return with worse-than-best validation weights.
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {10, 10};
  spec.test_counts = {5, 5};
  spec.num_channels = 1;
  spec.length = 16;
  spec.seed = 10;
  const data::TrainTest data = data::MakeSynthetic(spec);

  core::Rng rng(11);
  InceptionTimeConfig config = TinyConfig();
  config.trainer.max_epochs = 10;
  InceptionNetwork net(1, 2, config, rng);
  const nn::Tensor x_train = DatasetToTensor(data.train, 16, true);
  const nn::Tensor x_val = DatasetToTensor(data.test, 16, true);
  const nn::TrainResult result = nn::TrainClassifier(
      net, x_train, data.train.labels(), x_val, data.test.labels(),
      config.trainer, rng);
  const double final_accuracy =
      nn::EvaluateAccuracy(net, x_val, data.test.labels());
  EXPECT_NEAR(final_accuracy, result.best_val_accuracy, 1e-12);
}

TEST(Trainer, LearningRateFinderReturnsInRange) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {12, 12};
  spec.test_counts = {2, 2};
  spec.num_channels = 1;
  spec.length = 16;
  spec.seed = 12;
  const data::TrainTest data = data::MakeSynthetic(spec);

  core::Rng rng(13);
  InceptionTimeConfig config = TinyConfig();
  InceptionNetwork net(1, 2, config, rng);
  const nn::Tensor x = DatasetToTensor(data.train, 16, true);
  const std::vector<nn::Tensor> before = net.GetState();
  const double lr = nn::FindLearningRate(net, x, data.train.labels(), 8, rng);
  EXPECT_GE(lr, 1e-5);
  EXPECT_LE(lr, 1.0);
  // The range test must restore the network state.
  const std::vector<nn::Tensor> after = net.GetState();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

}  // namespace
}  // namespace tsaug::classify
