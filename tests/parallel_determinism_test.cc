// End-to-end determinism of the parallelised hot paths: every public
// result must be bitwise identical for 1, 2 and 8 threads, because
// ParallelFor call sites only partition independent output slices and
// all RNG draws stay in serial setup phases.

#include <vector>

#include <gtest/gtest.h>

#include "augment/noise.h"
#include "augment/oversample.h"
#include "classify/minirocket.h"
#include "classify/nearest_neighbor.h"
#include "classify/rocket.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/trace.h"
#include "eval/experiment.h"
#include "linalg/distance.h"
#include "linalg/knn.h"
#include "linalg/matrix.h"

namespace tsaug {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(core::GetNumThreads()) {}
  ~ThreadCountGuard() { core::SetNumThreads(saved_); }

 private:
  int saved_;
};

const std::vector<int> kThreadCounts = {1, 2, 8};

data::TrainTest SmallData(std::uint64_t seed = 1) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {14, 6};
  spec.test_counts = {6, 6};
  spec.num_channels = 2;
  spec.length = 24;
  spec.class_separation = 1.2;
  spec.seed = seed;
  return data::MakeSynthetic(spec);
}

TEST(ParallelDeterminism, MatMulFamilyBitwiseIdentical) {
  ThreadCountGuard guard;
  core::Rng rng(7);
  linalg::Matrix a(37, 53), b(53, 29);
  for (double& v : a.data()) v = rng.Normal();
  for (double& v : b.data()) v = rng.Normal();
  linalg::Matrix at = a.Transposed();
  linalg::Matrix bt = b.Transposed();
  std::vector<double> x(53);
  for (double& v : x) v = rng.Normal();

  core::SetNumThreads(1);
  const linalg::Matrix ab = linalg::MatMul(a, b);
  const linalg::Matrix ata = linalg::MatMulTransposeA(at, b);
  const linalg::Matrix abt = linalg::MatMulTransposeB(a, bt);
  const std::vector<double> ax = linalg::MatVec(a, x);
  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    EXPECT_EQ(ab, linalg::MatMul(a, b)) << threads << " threads";
    EXPECT_EQ(ata, linalg::MatMulTransposeA(at, b)) << threads << " threads";
    EXPECT_EQ(abt, linalg::MatMulTransposeB(a, bt)) << threads << " threads";
    EXPECT_EQ(ax, linalg::MatVec(a, x)) << threads << " threads";
  }
}

TEST(ParallelDeterminism, RocketTransformAndPredictIdentical) {
  ThreadCountGuard guard;
  const data::TrainTest data = SmallData(3);

  core::SetNumThreads(1);
  classify::RocketTransform reference_transform(150, 11);
  reference_transform.Fit(2, 24);
  const nn::Tensor x = classify::DatasetToTensor(data.test, 24, true);
  const linalg::Matrix reference_features = reference_transform.Transform(x);

  classify::RocketClassifier reference(150, 11);
  reference.Fit(data.train);
  const std::vector<int> reference_predictions = reference.Predict(data.test);

  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    classify::RocketTransform transform(150, 11);
    transform.Fit(2, 24);
    EXPECT_EQ(reference_features, transform.Transform(x))
        << threads << " threads";

    classify::RocketClassifier clf(150, 11);
    clf.Fit(data.train);
    EXPECT_EQ(reference_predictions, clf.Predict(data.test))
        << threads << " threads";
  }
}

TEST(ParallelDeterminism, MiniRocketPredictIdentical) {
  ThreadCountGuard guard;
  const data::TrainTest data = SmallData(5);

  core::SetNumThreads(1);
  classify::MiniRocketClassifier reference(84, 2);
  reference.Fit(data.train);
  const std::vector<int> reference_predictions = reference.Predict(data.test);

  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    classify::MiniRocketClassifier clf(84, 2);
    clf.Fit(data.train);
    EXPECT_EQ(reference_predictions, clf.Predict(data.test))
        << threads << " threads";
  }
}

TEST(ParallelDeterminism, PairwiseDistancesIdentical) {
  ThreadCountGuard guard;
  const data::TrainTest data = SmallData(9);
  std::vector<core::TimeSeries> series;
  std::vector<std::vector<double>> points;
  for (int i = 0; i < data.train.size(); ++i) {
    series.push_back(data.train.series(i));
    points.push_back(data.train.series(i).values());
  }

  core::SetNumThreads(1);
  const std::vector<double> dtw_ref =
      linalg::PairwiseDtwDistances(series, /*window=*/5);
  const std::vector<double> euclid_ref = linalg::PairwiseDistances(points);
  const std::vector<int> snn_ref =
      linalg::SharedNearestNeighborSimilarity(points, 4);

  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    EXPECT_EQ(dtw_ref, linalg::PairwiseDtwDistances(series, 5))
        << threads << " threads";
    EXPECT_EQ(euclid_ref, linalg::PairwiseDistances(points))
        << threads << " threads";
    EXPECT_EQ(snn_ref, linalg::SharedNearestNeighborSimilarity(points, 4))
        << threads << " threads";
  }
}

TEST(ParallelDeterminism, DtwKnnPredictionsIdentical) {
  ThreadCountGuard guard;
  const data::TrainTest data = SmallData(13);

  core::SetNumThreads(1);
  classify::KnnClassifier reference(3, classify::NnDistance::kDtw,
                                    /*dtw_window=*/4);
  reference.Fit(data.train);
  const std::vector<int> reference_predictions = reference.Predict(data.test);

  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    classify::KnnClassifier clf(3, classify::NnDistance::kDtw, 4);
    clf.Fit(data.train);
    EXPECT_EQ(reference_predictions, clf.Predict(data.test))
        << threads << " threads";
  }
}

TEST(ParallelDeterminism, ExperimentGridIdentical) {
  ThreadCountGuard guard;
  const data::TrainTest data = SmallData(2);
  eval::ExperimentConfig config;
  config.model = eval::ModelKind::kRocket;
  config.runs = 2;
  config.rocket_kernels = 80;
  config.seed = 5;

  auto run_grid = [&] {
    // Fresh augmenters per call: they cache per-train-set state.
    std::vector<std::shared_ptr<augment::Augmenter>> techniques = {
        std::make_shared<augment::NoiseInjection>(1.0),
        std::make_shared<augment::Smote>(),
    };
    return eval::RunDatasetGrid("toy", data, techniques, config);
  };

  core::SetNumThreads(1);
  const eval::DatasetRow reference = run_grid();
  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    const eval::DatasetRow row = run_grid();
    EXPECT_EQ(reference.baseline_accuracy, row.baseline_accuracy)
        << threads << " threads";
    ASSERT_EQ(reference.cells.size(), row.cells.size());
    for (size_t i = 0; i < reference.cells.size(); ++i) {
      EXPECT_EQ(reference.cells[i].accuracy, row.cells[i].accuracy)
          << "cell " << reference.cells[i].technique << ", " << threads
          << " threads";
    }
  }
}

TEST(ParallelDeterminism, TracingEnabledGridIdentical) {
  // Tracing only reads the steady clock — never the RNG — so enabling it
  // must leave every grid cell bitwise identical at any thread count.
  // (CI also runs this whole binary under TSAUG_TRACE=1.)
  ThreadCountGuard thread_guard;
  const bool trace_was_enabled = core::trace::Enabled();
  const data::TrainTest data = SmallData(2);
  eval::ExperimentConfig config;
  config.model = eval::ModelKind::kRocket;
  config.runs = 2;
  config.rocket_kernels = 80;
  config.seed = 5;

  auto run_grid = [&] {
    // Fresh augmenters per call: they cache per-train-set state.
    std::vector<std::shared_ptr<augment::Augmenter>> techniques = {
        std::make_shared<augment::NoiseInjection>(1.0),
        std::make_shared<augment::Smote>(),
    };
    return eval::RunDatasetGrid("toy", data, techniques, config);
  };

  // Reference row computed with tracing off.
  core::trace::Disable();
  core::SetNumThreads(1);
  const eval::DatasetRow reference = run_grid();

  core::trace::Enable();
  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    const eval::DatasetRow row = run_grid();
    EXPECT_EQ(reference.baseline_accuracy, row.baseline_accuracy)
        << threads << " threads, tracing on";
    ASSERT_EQ(reference.cells.size(), row.cells.size());
    for (size_t i = 0; i < reference.cells.size(); ++i) {
      EXPECT_EQ(reference.cells[i].accuracy, row.cells[i].accuracy)
          << "cell " << reference.cells[i].technique << ", " << threads
          << " threads, tracing on";
    }
  }

  // The traced runs actually recorded something.
  EXPECT_GT(core::trace::CounterValue("eval.cells"), 0);

  if (!trace_was_enabled) core::trace::Disable();
}

}  // namespace
}  // namespace tsaug
