#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace tsaug::fft {
namespace {

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> data(8, Complex(0, 0));
  data[0] = Complex(1, 0);
  Fft(data);
  for (const Complex& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SinglePureToneConcentratesEnergy) {
  const int n = 32;
  const int freq = 5;
  std::vector<Complex> data(n);
  for (int t = 0; t < n; ++t) {
    data[static_cast<size_t>(t)] = Complex(std::cos(2.0 * std::numbers::pi * freq * t / n), 0.0);
  }
  Fft(data);
  // Energy only at bins freq and n-freq, each amplitude n/2.
  for (int k = 0; k < n; ++k) {
    const double mag = std::abs(data[static_cast<size_t>(k)]);
    if (k == freq || k == n - freq) {
      EXPECT_NEAR(mag, n / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

class FftRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FftRoundTrip, InverseRecoversSignal) {
  const int n = GetParam();
  core::Rng rng(static_cast<size_t>(n));
  std::vector<Complex> data(static_cast<size_t>(n));
  std::vector<Complex> original(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    data[static_cast<size_t>(i)] = Complex(rng.Normal(), rng.Normal());
    original[static_cast<size_t>(i)] = data[static_cast<size_t>(i)];
  }
  Fft(data, /*inverse=*/false);
  Fft(data, /*inverse=*/true);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(data[static_cast<size_t>(i)].real(), original[static_cast<size_t>(i)].real(), 1e-9) << "n=" << n;
    EXPECT_NEAR(data[static_cast<size_t>(i)].imag(), original[static_cast<size_t>(i)].imag(), 1e-9) << "n=" << n;
  }
}

// Powers of two exercise radix-2; the rest exercise Bluestein, including
// primes and the paper datasets' odd lengths.
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 3, 5, 7, 12,
                                           30, 93, 144, 182, 405));

TEST(Fft, MatchesNaiveDftOnArbitraryLength) {
  const int n = 11;
  core::Rng rng(42);
  std::vector<Complex> data(n);
  for (int i = 0; i < n; ++i) data[static_cast<size_t>(i)] = Complex(rng.Normal(), 0.0);
  std::vector<Complex> naive(n, Complex(0, 0));
  for (int k = 0; k < n; ++k) {
    for (int t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * k * t / n;
      naive[static_cast<size_t>(k)] += data[static_cast<size_t>(t)] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  Fft(data);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(data[static_cast<size_t>(k)].real(), naive[static_cast<size_t>(k)].real(), 1e-9);
    EXPECT_NEAR(data[static_cast<size_t>(k)].imag(), naive[static_cast<size_t>(k)].imag(), 1e-9);
  }
}

TEST(RealFft, RoundTripsThroughInverse) {
  core::Rng rng(9);
  std::vector<double> signal(37);
  for (double& v : signal) v = rng.Normal();
  const auto spectrum = RealFft(signal);
  const auto back = InverseRealFft(spectrum);
  ASSERT_EQ(back.size(), signal.size());
  for (size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(back[i], signal[i], 1e-9);
  }
}

TEST(RealFft, SpectrumConjugateSymmetric) {
  core::Rng rng(10);
  std::vector<double> signal(16);
  for (double& v : signal) v = rng.Normal();
  const auto spectrum = RealFft(signal);
  for (size_t k = 1; k < signal.size(); ++k) {
    EXPECT_NEAR(spectrum[k].real(), spectrum[signal.size() - k].real(), 1e-9);
    EXPECT_NEAR(spectrum[k].imag(), -spectrum[signal.size() - k].imag(), 1e-9);
  }
}

TEST(Stft, FrameCountCoversSignal) {
  std::vector<double> signal(100, 1.0);
  const auto frames = Stft(signal, /*window_size=*/16, /*hop=*/8);
  EXPECT_GE(static_cast<int>(frames.size()) * 8, 100 - 16);
  for (const auto& frame : frames) EXPECT_EQ(frame.size(), 16u);
}

TEST(Stft, InverseStftReconstructsInterior) {
  core::Rng rng(11);
  std::vector<double> signal(128);
  for (double& v : signal) v = rng.Normal();
  const int window = 32;
  const int hop = 8;
  const auto frames = Stft(signal, window, hop);
  const auto back = InverseStft(frames, window, hop, 128);
  ASSERT_EQ(back.size(), signal.size());
  // Edges are attenuated by the window; check the interior.
  for (int t = window; t < 128 - window; ++t) {
    EXPECT_NEAR(back[static_cast<size_t>(t)], signal[static_cast<size_t>(t)], 1e-6) << "t=" << t;
  }
}

}  // namespace
}  // namespace tsaug::fft
