// Tests for the extended techniques: EMD recombination, the VAE
// augmenter, maximum-entropy bootstrap, DTW-guided warping and INOS.
#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "augment/emd.h"
#include "augment/guided_warp.h"
#include "augment/meboot.h"
#include "augment/vae.h"
#include "data/synthetic.h"
#include "linalg/distance.h"

namespace tsaug::augment {
namespace {

using core::TimeSeries;

std::vector<double> TwoToneSignal(int n) {
  std::vector<double> x(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    x[static_cast<size_t>(t)] = std::sin(0.8 * t) + 0.3 * std::sin(0.1 * t) + 0.02 * t;
  }
  return x;
}

TEST(EmpiricalModeDecompose, ExactReconstruction) {
  const std::vector<double> signal = TwoToneSignal(80);
  const EmdResult result = EmpiricalModeDecompose(signal);
  ASSERT_FALSE(result.imfs.empty());
  for (size_t t = 0; t < signal.size(); ++t) {
    double sum = result.residual[t];
    for (const auto& imf : result.imfs) sum += imf[t];
    EXPECT_NEAR(sum, signal[t], 1e-9);
  }
}

TEST(EmpiricalModeDecompose, FirstImfIsFastest) {
  // The first IMF captures the fast tone: it should have more zero
  // crossings than the second.
  const EmdResult result = EmpiricalModeDecompose(TwoToneSignal(120));
  ASSERT_GE(result.imfs.size(), 2u);
  auto zero_crossings = [](const std::vector<double>& x) {
    int count = 0;
    for (size_t t = 1; t < x.size(); ++t) {
      if ((x[t - 1] < 0) != (x[t] < 0)) ++count;
    }
    return count;
  };
  EXPECT_GT(zero_crossings(result.imfs[0]), zero_crossings(result.imfs[1]));
}

TEST(EmpiricalModeDecompose, MonotoneSignalHasNoImf) {
  std::vector<double> ramp(30);
  std::iota(ramp.begin(), ramp.end(), 0.0);
  const EmdResult result = EmpiricalModeDecompose(ramp);
  EXPECT_TRUE(result.imfs.empty());
  EXPECT_EQ(result.residual, ramp);
}

TEST(EmdAugmenter, PreservesTrendPerturbsOscillation) {
  TimeSeries s(1, 100);
  for (int t = 0; t < 100; ++t) s.at(0, t) = 0.1 * t + std::sin(0.9 * t);
  core::Rng rng(1);
  const TimeSeries augmented = EmdAugmenter(0.4).Transform(s, rng);
  // Trend preserved: values track 0.1*t within the oscillation amplitude.
  for (int t = 10; t < 90; ++t) {
    EXPECT_NEAR(augmented.at(0, t), 0.1 * t, 3.0);
  }
  // But the series did change.
  EXPECT_GT(linalg::EuclideanDistance(augmented, s), 0.1);
}

TEST(Vae, LearnsToReconstructAndSample) {
  // A tight 1-D manifold in 6-D: x = (a, a, a, -a, -a, 0) + noise.
  core::Rng data_rng(2);
  std::vector<std::vector<double>> instances;
  for (int i = 0; i < 40; ++i) {
    const double a = data_rng.Uniform(-2.0, 2.0);
    instances.push_back({a + data_rng.Normal(0, 0.05),
                         a + data_rng.Normal(0, 0.05),
                         a + data_rng.Normal(0, 0.05),
                         -a + data_rng.Normal(0, 0.05),
                         -a + data_rng.Normal(0, 0.05),
                         data_rng.Normal(0, 0.05)});
  }
  VaeConfig config;
  config.hidden_dim = 16;
  config.latent_dim = 2;
  config.epochs = 400;
  config.seed = 3;
  Vae vae(config);
  vae.Fit(instances);
  EXPECT_LT(vae.final_loss(), 1.0);

  core::Rng rng(4);
  const auto samples = vae.Sample(100, rng);
  ASSERT_EQ(samples.size(), 100u);
  // Samples should respect the manifold: dim0 ~ dim1, dim0 ~ -dim3.
  double corr_01 = 0.0;
  double corr_03 = 0.0;
  for (const auto& s : samples) {
    corr_01 += s[0] * s[1];
    corr_03 += s[0] * s[3];
  }
  EXPECT_GT(corr_01, 0.0);
  EXPECT_LT(corr_03, 0.0);
}

TEST(VaeAugmenter, GeneratesDatasetShapedSeries) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {10, 5};
  spec.test_counts = {2, 2};
  spec.num_channels = 2;
  spec.length = 16;
  spec.seed = 5;
  const core::Dataset train = data::MakeSynthetic(spec).train;
  VaeConfig config;
  config.epochs = 50;
  VaeAugmenter augmenter(config);
  core::Rng rng(6);
  const auto generated = augmenter.Generate(train, 1, 4, rng);
  ASSERT_EQ(generated.size(), 4u);
  for (const TimeSeries& s : generated) {
    EXPECT_EQ(s.num_channels(), 2);
    EXPECT_EQ(s.length(), 16);
  }
}

TEST(MaximumEntropyBootstrap, PreservesRankOrder) {
  TimeSeries s = TimeSeries::FromChannels({{5, 1, 4, 2, 3}});
  core::Rng rng(7);
  const TimeSeries replicate = MaximumEntropyBootstrap().Transform(s, rng);
  // Original ordering: position 0 is the max, position 1 the min, etc.
  std::vector<double> values(replicate.channel(0).begin(),
                             replicate.channel(0).end());
  EXPECT_EQ(std::max_element(values.begin(), values.end()) - values.begin(), 0);
  EXPECT_EQ(std::min_element(values.begin(), values.end()) - values.begin(), 1);
  EXPECT_GT(values[2], values[3]);
  EXPECT_GT(values[4], values[3]);
}

TEST(MaximumEntropyBootstrap, StaysNearOriginalRange) {
  core::Rng data_rng(8);
  TimeSeries s(1, 200);
  for (double& v : s.values()) v = data_rng.Normal(10.0, 2.0);
  core::Rng rng(9);
  const TimeSeries replicate = MaximumEntropyBootstrap().Transform(s, rng);
  const double lo = *std::min_element(s.values().begin(), s.values().end());
  const double hi = *std::max_element(s.values().begin(), s.values().end());
  for (double v : replicate.values()) {
    EXPECT_GE(v, lo - 2.0);
    EXPECT_LE(v, hi + 2.0);
  }
  // New draws differ from the originals.
  EXPECT_GT(linalg::EuclideanDistance(replicate, s), 0.1);
}

TEST(DtwGuidedWarp, WarpOntoReferenceLengthAndValues) {
  // Seed: bump early. Reference: same bump late. The warped series should
  // carry the seed's values on the reference's timing.
  std::vector<double> seed_values(30, 0.0);
  std::vector<double> ref_values(30, 0.0);
  for (int t = 5; t < 10; ++t) seed_values[static_cast<size_t>(t)] = 1.0;
  for (int t = 18; t < 23; ++t) ref_values[static_cast<size_t>(t)] = 1.0;
  const TimeSeries seed = TimeSeries::FromValues(seed_values);
  const TimeSeries reference = TimeSeries::FromValues(ref_values);

  const TimeSeries warped = DtwGuidedWarp::WarpOnto(seed, reference, -1);
  EXPECT_EQ(warped.length(), 30);
  // The bump moved toward the reference's position.
  double late_mass = 0.0;
  double early_mass = 0.0;
  for (int t = 0; t < 15; ++t) early_mass += warped.at(0, t);
  for (int t = 15; t < 30; ++t) late_mass += warped.at(0, t);
  EXPECT_GT(late_mass, early_mass);
  // Value range preserved (warping only re-times samples).
  for (double v : warped.values()) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(DtwGuidedWarp, GenerateMatchesDatasetGeometry) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {6, 4};
  spec.test_counts = {2, 2};
  spec.num_channels = 3;
  spec.length = 20;
  spec.seed = 10;
  const core::Dataset train = data::MakeSynthetic(spec).train;
  DtwGuidedWarp warp(4);
  core::Rng rng(11);
  for (const TimeSeries& s : warp.Generate(train, 0, 5, rng)) {
    EXPECT_EQ(s.num_channels(), 3);
    EXPECT_EQ(s.length(), 20);
  }
}

TEST(Inos, MixesInterpolationAndCovarianceSamples) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {12, 6};
  spec.test_counts = {2, 2};
  spec.num_channels = 2;
  spec.length = 16;
  spec.seed = 12;
  const core::Dataset train = data::MakeSynthetic(spec).train;
  Inos inos(0.5);
  core::Rng rng(13);
  const auto generated = inos.Generate(train, 1, 10, rng);
  EXPECT_EQ(generated.size(), 10u);
  for (const TimeSeries& s : generated) {
    EXPECT_EQ(s.num_channels(), 2);
    EXPECT_EQ(s.length(), 16);
    for (double v : s.values()) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace tsaug::augment
