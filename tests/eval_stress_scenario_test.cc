// Chaos tests for the stress-scenario grid (data/scenarios.h +
// core/validate.h), driven through the real tools/stress_grid_main binary
// (path in TSAUG_STRESS_BIN):
//   - the full catalog grid (>= 200 cells) completes crash-free: exit 0,
//     every cell journaled, and every failed cell carries a typed Status
//     (never an abort, never a fabricated accuracy 0);
//   - the golden report is byte-identical at 1, 2 and 8 threads;
//   - a sharded run whose worker is killed mid-shard resumes from its
//     journal and merges byte-identical to the golden run.
#include <sys/wait.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tsaug::eval {
namespace {

std::string TempDirFor(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

const char* StressBinary() { return std::getenv("TSAUG_STRESS_BIN"); }

/// Runs stress_grid_main over the full scenario catalog (2 runs x
/// {baseline, noise_1.0, noise_3.0, smote} per scenario — 4 cells x 2
/// runs x catalog size, comfortably over the 200-cell bar) with `args`
/// appended. Returns the raw std::system wait status.
int RunStress(const std::string& args, int threads,
              const std::string& faults = "",
              const std::string& journal = "") {
  std::string command;
  command += "TSAUG_RUNS=2 TSAUG_KERNELS=48 ";
  command += "TSAUG_TECHNIQUES='noise_1.0,noise_3.0,smote' ";
  command += "TSAUG_JOURNAL='" + journal + "' ";
  command += "TSAUG_NUM_THREADS=" + std::to_string(threads) + " ";
  command += "TSAUG_FAULTS='" + faults + "' ";
  // Sequential appends: GCC 12 -O2 fires a bogus -Wrestrict on the
  // char*-plus-rvalue-string overload, fatal under the strict CI leg.
  command += "'";
  command += StressBinary();
  command += "' ";
  command += args;
  return std::system(command.c_str());
}

bool ExitedCleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

int Counter(const std::string& trace_json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const std::size_t pos = trace_json.find(key);
  if (pos == std::string::npos) return 0;
  return std::atoi(trace_json.c_str() + pos + key.size());
}

/// Number of occurrences of `needle` in `haystack`.
int CountOf(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// One parsed cell line of a canonical report:
/// "  <name> bits=<u64> failed=<n> retries=<n> err=<status>".
struct ReportCell {
  std::string dataset;
  std::string name;
  double accuracy = 0.0;
  int failed = 0;
  std::string err;
};

std::vector<ReportCell> ParseReport(const std::string& report) {
  std::vector<ReportCell> cells;
  std::istringstream lines(report);
  std::string line, dataset;
  while (std::getline(lines, line)) {
    if (line.rfind("dataset=", 0) == 0) {
      dataset = line.substr(8);
      continue;
    }
    if (line.rfind("  ", 0) != 0) continue;
    const std::size_t bits_pos = line.find(" bits=");
    const std::size_t failed_pos = line.find(" failed=");
    const std::size_t err_pos = line.find(" err=");
    if (bits_pos == std::string::npos || failed_pos == std::string::npos ||
        err_pos == std::string::npos) {
      continue;
    }
    ReportCell cell;
    cell.dataset = dataset;
    cell.name = line.substr(2, bits_pos - 2);
    const std::uint64_t bits =
        std::strtoull(line.c_str() + bits_pos + 6, nullptr, 10);
    std::memcpy(&cell.accuracy, &bits, sizeof(cell.accuracy));
    cell.failed = std::atoi(line.c_str() + failed_pos + 8);
    cell.err = line.substr(err_pos + 5);
    cells.push_back(std::move(cell));
  }
  return cells;
}

/// Runs the unsharded golden report into a fresh file and returns its
/// bytes.
std::string GoldenReport(const std::string& tag, int threads,
                         const std::string& journal = "") {
  const std::string out = TempDirFor("stress_golden_" + tag + ".txt");
  std::filesystem::remove(out);
  const int status =
      RunStress("--shards 0 --out '" + out + "'", threads, "", journal);
  EXPECT_TRUE(ExitedCleanly(status));
  return ReadAll(out);
}

TEST(StressScenarioGrid, CatalogGridCompletesCrashFreeWithTypedFailures) {
  if (StressBinary() == nullptr) GTEST_SKIP() << "TSAUG_STRESS_BIN unset";
  const std::string journal = TempDirFor("stress_catalog_journal.jsonl");
  std::filesystem::remove(journal);
  const std::string report = GoldenReport("catalog", 2, journal);
  ASSERT_FALSE(report.empty());

  // The acceptance bar: a >= 200-cell grid, every computed cell journaled
  // (preflight-fatal scenarios included — their typed rows must replay).
  const std::string journal_bytes = ReadAll(journal);
  EXPECT_GE(CountOf(journal_bytes, "\"type\":\"cell\""), 200);

  const std::vector<ReportCell> cells = ParseReport(report);
  ASSERT_GE(static_cast<int>(cells.size()), 100);  // 4 per scenario row
  bool saw_degenerate = false;
  bool saw_failed = false;
  for (const ReportCell& cell : cells) {
    SCOPED_TRACE(cell.dataset + "/" + cell.name);
    if (cell.failed > 0) {
      saw_failed = true;
      // Typed-only failures: a failed cell must carry a real Status...
      EXPECT_NE(cell.err, "ok");
      // ...and an abort or fabricated score can never masquerade as an
      // accuracy: a cell where every run failed reports NaN, not 0.
      if (cell.failed >= 2) {
        EXPECT_TRUE(std::isnan(cell.accuracy));
      }
    } else {
      EXPECT_EQ(cell.err, "ok");
      EXPECT_TRUE(std::isfinite(cell.accuracy));
      EXPECT_GE(cell.accuracy, 0.0);
      EXPECT_LE(cell.accuracy, 1.0);
    }
  }
  EXPECT_TRUE(saw_failed);

  // Scenarios designed to fail diagnose as such: length_one_all is below
  // every model's length floor and must fail preflight across the row.
  for (const ReportCell& cell : cells) {
    if (cell.dataset != "length_one_all") continue;
    saw_degenerate = true;
    EXPECT_EQ(cell.failed, 2);
    EXPECT_NE(cell.err.find("degenerate_input"), std::string::npos);
    EXPECT_NE(cell.err.find("preflight"), std::string::npos);
  }
  EXPECT_TRUE(saw_degenerate);

  // The empty-class scenario degrades gracefully end to end: the balance
  // protocol skips the absent class (rather than asking an augmenter to
  // invent it, which would fail kEmptyClass — covered in the unit tests),
  // so the whole row trains.
  bool saw_empty_class_row = false;
  for (const ReportCell& cell : cells) {
    if (cell.dataset != "empty_class") continue;
    saw_empty_class_row = true;
    EXPECT_EQ(cell.failed, 0);
    EXPECT_TRUE(std::isfinite(cell.accuracy));
  }
  EXPECT_TRUE(saw_empty_class_row);

  // Repairable scenarios (dead channels, short-series mixes) must make it
  // through preflight repair and train: their baselines succeed.
  for (const ReportCell& cell : cells) {
    if (cell.name != "baseline") continue;
    if (cell.dataset == "missing_channel_dead" ||
        cell.dataset == "varlen_tiny_mix" ||
        cell.dataset == "imbalance_singleton") {
      SCOPED_TRACE(cell.dataset);
      EXPECT_EQ(cell.failed, 0);
      EXPECT_TRUE(std::isfinite(cell.accuracy));
    }
  }
}

TEST(StressScenarioGrid, GoldenReportByteIdenticalAtOneTwoEightThreads) {
  if (StressBinary() == nullptr) GTEST_SKIP() << "TSAUG_STRESS_BIN unset";
  const std::string golden = GoldenReport("threads_1", 1);
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(GoldenReport("threads_2", 2), golden);
  EXPECT_EQ(GoldenReport("threads_8", 8), golden);
}

TEST(StressScenarioGrid, KilledShardWorkerResumesByteIdentical) {
  if (StressBinary() == nullptr) GTEST_SKIP() << "TSAUG_STRESS_BIN unset";
  const std::string golden = GoldenReport("kill", 2);
  ASSERT_FALSE(golden.empty());

  const std::string dir = TempDirFor("stress_kill_j");
  const std::string out = TempDirFor("stress_kill_out.txt");
  const std::string trace = TempDirFor("stress_kill_trace.json");
  std::filesystem::remove_all(dir);
  // Shard 0's first attempt aborts (SIGABRT) at its second dataset, so its
  // journal holds a completed prefix; the restarted attempt resumes past
  // it. The merged replay must still reproduce the golden bytes — typed
  // preflight failures included, since those rows are journaled too.
  ASSERT_TRUE(ExitedCleanly(
      RunStress("--shards 2 --journal-dir '" + dir + "' --out '" + out +
                    "' --trace-json '" + trace + "' --backoff-ms 10",
                2, "shard.worker@shard/0/attempt1:2!")));
  EXPECT_EQ(ReadAll(out), golden);
  const std::string counters = ReadAll(trace);
  EXPECT_GE(Counter(counters, "shard.retried"), 1);
  EXPECT_EQ(Counter(counters, "shard.completed"), 2);
}

}  // namespace
}  // namespace tsaug::eval
