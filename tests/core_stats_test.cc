#include "core/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tsaug::core {
namespace {

Dataset TwoByTwo(double a, double b) {
  Dataset data;
  data.Add(TimeSeries::FromChannels({{a, a}}), 0);
  data.Add(TimeSeries::FromChannels({{b, b}}), 1);
  return data;
}

TEST(DatasetVariance, MatchesHandComputation) {
  // Two univariate length-2 series: values {0, 0} and {2, 2}.
  // Per-cell variance (denominator N) = 1 at both steps -> average 1.
  Dataset data = TwoByTwo(0.0, 2.0);
  EXPECT_NEAR(DatasetVariance(data), 1.0, 1e-12);
}

TEST(DatasetVariance, ZeroForIdenticalSeries) {
  Dataset data = TwoByTwo(3.0, 3.0);
  EXPECT_NEAR(DatasetVariance(data), 0.0, 1e-12);
}

TEST(HellingerDistance, UniformVsItselfIsZero) {
  EXPECT_NEAR(HellingerDistance({0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
}

TEST(HellingerDistance, MaximalForDisjointSupport) {
  EXPECT_NEAR(HellingerDistance({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
}

TEST(ImbalanceDegree, BalancedIsZero) {
  EXPECT_DOUBLE_EQ(ImbalanceDegree(std::vector<int>{10, 10, 10}), 0.0);
}

TEST(ImbalanceDegree, SingleMinorityInUnitInterval) {
  // One class below 1/K -> m = 1 -> ID in (0, 1].
  const double id = ImbalanceDegree(std::vector<int>{10, 10, 2});
  EXPECT_GT(id, 0.0);
  EXPECT_LE(id, 1.0);
}

TEST(ImbalanceDegree, ExtremeDistributionReachesM) {
  // iota_m itself: one empty-ish minority class, ID should be ~m = 1 for
  // counts {1, 10, 21} scaled pattern close to {0, 1/3, 2/3}.
  const double id = ImbalanceDegree(std::vector<int>{1, 100, 199});
  EXPECT_GT(id, 0.9);
  EXPECT_LE(id, 1.0 + 1e-9);
}

TEST(ImbalanceDegree, MoreMinorityClassesMeansHigherBand) {
  // Two minority classes -> ID in (1, 2].
  const double id = ImbalanceDegree(std::vector<int>{1, 1, 10, 10});
  EXPECT_GT(id, 1.0);
  EXPECT_LE(id, 2.0);
}

TEST(ImbalanceDegree, MonotoneInSeverity) {
  const double mild = ImbalanceDegree(std::vector<int>{8, 10, 10});
  const double severe = ImbalanceDegree(std::vector<int>{2, 10, 10});
  EXPECT_LT(mild, severe);
}

TEST(TrainTestDistance, ZeroForIdenticalSets) {
  Dataset data = TwoByTwo(1.0, 5.0);
  EXPECT_NEAR(TrainTestDistance(data, data), 0.0, 1e-12);
}

TEST(TrainTestDistance, CapturesMeanShift) {
  Dataset train = TwoByTwo(0.0, 0.0);
  Dataset test = TwoByTwo(3.0, 3.0);
  // Mean series differ by 3 at each of 2 steps -> sqrt(9+9).
  EXPECT_NEAR(TrainTestDistance(train, test), std::sqrt(18.0), 1e-12);
}

TEST(MissingProportion, CountsNaNs) {
  Dataset train;
  train.Add(TimeSeries::FromChannels({{1, std::nan("")}}), 0);
  Dataset test;
  test.Add(TimeSeries::FromChannels({{1, 2}}), 0);
  EXPECT_NEAR(MissingProportion(train, test), 0.25, 1e-12);
}

TEST(ComputeProperties, FillsAllFields) {
  Dataset train;
  for (int i = 0; i < 6; ++i) {
    train.Add(TimeSeries::FromChannels({{1.0 * i, 2.0}, {0.0, 1.0}}), i % 2);
  }
  train.Add(TimeSeries::FromChannels({{9, 9}, {9, 9}}), 2);
  Dataset test = train;
  const DatasetProperties props = ComputeProperties("toy", train, test);
  EXPECT_EQ(props.name, "toy");
  EXPECT_EQ(props.n_classes, 3);
  EXPECT_EQ(props.train_size, 7);
  EXPECT_EQ(props.dim, 2);
  EXPECT_EQ(props.length, 2);
  EXPECT_GT(props.var_train, 0.0);
  EXPECT_DOUBLE_EQ(props.var_train, props.var_test);
  EXPECT_GT(props.im_ratio, 0.0);
  EXPECT_NEAR(props.d_train_test, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(props.prop_miss, 0.0);
}

}  // namespace
}  // namespace tsaug::core
