#include "classify/nearest_neighbor.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace tsaug::classify {
namespace {

data::TrainTest SmallData(std::uint64_t seed = 1) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.train_counts = {8, 8, 8};
  spec.test_counts = {4, 4, 4};
  spec.num_channels = 2;
  spec.length = 24;
  spec.class_separation = 1.5;
  spec.seed = seed;
  return data::MakeSynthetic(spec);
}

TEST(KnnClassifier, NamesReflectConfig) {
  EXPECT_EQ(KnnClassifier(1, NnDistance::kDtw).name(), "1-NN-DTW");
  EXPECT_EQ(KnnClassifier(3, NnDistance::kEuclidean).name(), "3-NN-Euclidean");
}

TEST(KnnClassifier, OneNnDtwClassifiesSeparableData) {
  const data::TrainTest data = SmallData();
  KnnClassifier clf(1, NnDistance::kDtw, /*dtw_window=*/4);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.75);
}

TEST(KnnClassifier, EuclideanVariantWorks) {
  const data::TrainTest data = SmallData(2);
  KnnClassifier clf(1, NnDistance::kEuclidean);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.7);
}

TEST(KnnClassifier, TrainingInstancePredictsItself) {
  const data::TrainTest data = SmallData(3);
  KnnClassifier clf(1, NnDistance::kEuclidean);
  clf.Fit(data.train);
  EXPECT_DOUBLE_EQ(clf.Score(data.train), 1.0);
}

TEST(KnnClassifier, KThreeMajorityVote) {
  const data::TrainTest data = SmallData(4);
  KnnClassifier clf(3, NnDistance::kEuclidean);
  clf.Fit(data.train);
  const std::vector<int> predictions = clf.Predict(data.test);
  EXPECT_EQ(predictions.size(), 12u);
  for (int p : predictions) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(Accuracy, CountsMatches) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

}  // namespace
}  // namespace tsaug::classify
