#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/optimizer.h"

namespace tsaug::nn {
namespace {

TEST(Linear, ShapesAndDeterminism) {
  core::Rng rng(1);
  Linear layer(4, 3, rng);
  Variable x(Tensor({5, 4}, 1.0));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{5, 3}));
  // Identical rows -> identical outputs.
  for (int j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(y.value().at(0, j), y.value().at(4, j));
  }
}

TEST(Linear, TrainsToFitLinearTarget) {
  core::Rng rng(2);
  Linear layer(2, 1, rng);
  Adam adam(layer.AllParameters(), 0.05);

  Tensor x({16, 2});
  Tensor target({16, 1});
  for (int i = 0; i < 16; ++i) {
    x.at(i, 0) = rng.Normal();
    x.at(i, 1) = rng.Normal();
    target.at(i, 0) = 3.0 * x.at(i, 0) - 2.0 * x.at(i, 1) + 0.5;
  }
  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    adam.ZeroGrad();
    Variable loss = MseLoss(layer.Forward(Variable(x)), target);
    loss.Backward();
    adam.Step();
    final_loss = loss.value().scalar();
  }
  EXPECT_LT(final_loss, 1e-3);
}

TEST(Conv1dLayer, OutputShapePreservesTime) {
  core::Rng rng(3);
  Conv1dLayer conv(3, 8, 5, rng, /*dilation=*/2);
  Variable x(Tensor({2, 3, 17}));
  Variable y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 17}));
}

TEST(Conv1dLayer, NoBiasVariant) {
  core::Rng rng(4);
  Conv1dLayer conv(2, 4, 3, rng, 1, /*use_bias=*/false);
  EXPECT_EQ(conv.Parameters().size(), 1u);
  Variable x(Tensor({1, 2, 5}, 0.0));
  Variable y = conv.Forward(x);
  for (size_t i = 0; i < y.value().numel(); ++i) {
    EXPECT_DOUBLE_EQ(y.value()[i], 0.0);  // zero input, no bias -> zero out
  }
}

TEST(BatchNorm1d, NormalizesTrainingBatch) {
  core::Rng rng(5);
  BatchNorm1d bn(2);
  Tensor x({4, 2, 8});
  for (double& v : x.data()) v = rng.Normal(5.0, 3.0);
  Variable y = bn.Forward(Variable(x));
  // Per-channel mean ~0, var ~1 after normalisation (gamma=1, beta=0).
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (int i = 0; i < 4; ++i) {
      for (int t = 0; t < 8; ++t) mean += y.value().at(i, c, t);
    }
    mean /= 32.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
  }
}

TEST(BatchNorm1d, InferenceUsesRunningStats) {
  core::Rng rng(6);
  BatchNorm1d bn(1);
  // Feed several training batches with mean ~10.
  for (int step = 0; step < 20; ++step) {
    Tensor x({8, 1, 4});
    for (double& v : x.data()) v = rng.Normal(10.0, 2.0);
    bn.Forward(Variable(x));
  }
  bn.SetTraining(false);
  Tensor probe({1, 1, 4}, 10.0);
  Variable y = bn.Forward(Variable(probe));
  // An input at the running mean maps near zero.
  EXPECT_NEAR(y.value().at(0, 0, 0), 0.0, 0.5);
}

TEST(BatchNorm1d, StateRoundTripsThroughGetSetState) {
  core::Rng rng(7);
  BatchNorm1d bn(3);
  Tensor x({4, 3, 5});
  for (double& v : x.data()) v = rng.Normal(2.0, 1.5);
  bn.Forward(Variable(x));
  const std::vector<Tensor> state = bn.GetState();

  BatchNorm1d restored(3);
  restored.SetState(state);
  EXPECT_EQ(restored.running_mean(), bn.running_mean());
  EXPECT_EQ(restored.running_var(), bn.running_var());
}

TEST(GruCell, StepShapesAndRange) {
  core::Rng rng(8);
  GruCell cell(3, 5, rng);
  Variable x(Tensor({2, 3}, 0.5));
  Variable h(Tensor({2, 5}));
  Variable h_next = cell.Step(x, h);
  EXPECT_EQ(h_next.shape(), (std::vector<int>{2, 5}));
  // GRU state is a convex combination of tanh outputs: bounded by 1.
  for (size_t i = 0; i < h_next.value().numel(); ++i) {
    EXPECT_LT(std::fabs(h_next.value()[i]), 1.0);
  }
}

TEST(Gru, ForwardShape) {
  core::Rng rng(9);
  Gru gru(4, 6, /*num_layers=*/2, rng);
  Variable x(Tensor({3, 7, 4}, 0.1));
  Variable out = gru.Forward(x);
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 7, 6}));
}

TEST(Gru, GradientsReachAllParameters) {
  core::Rng rng(10);
  Gru gru(2, 3, 2, rng);
  Tensor x({2, 5, 2});
  for (double& v : x.data()) v = rng.Normal();
  Variable loss = Mean(gru.Forward(Variable(x)));
  loss.Backward();
  for (const Variable& p : gru.AllParameters()) {
    double norm = 0.0;
    for (size_t i = 0; i < p.grad().numel(); ++i) norm += std::fabs(p.grad()[i]);
    EXPECT_GT(norm, 0.0);
  }
}

TEST(Gru, LearnsToOutputLastInput) {
  // Tiny BPTT sanity check: map a constant input sequence to its value.
  core::Rng rng(11);
  Gru gru(1, 4, 1, rng);
  Linear head(4, 1, rng);
  std::vector<Variable> params = gru.AllParameters();
  for (const Variable& p : head.AllParameters()) params.push_back(p);
  Adam adam(params, 0.02);

  double final_loss = 1e9;
  for (int step = 0; step < 200; ++step) {
    Tensor x({8, 6, 1});
    Tensor target({8, 1});
    for (int i = 0; i < 8; ++i) {
      const double v = rng.Uniform(-1, 1);
      for (int t = 0; t < 6; ++t) x.at(i, t, 0) = v;
      target.at(i, 0) = v;
    }
    adam.ZeroGrad();
    Variable out = gru.Forward(Variable(x));
    Variable last = SelectTime(out, 5);
    Variable loss = MseLoss(head.Forward(last), target);
    loss.Backward();
    adam.Step();
    final_loss = loss.value().scalar();
  }
  EXPECT_LT(final_loss, 0.02);
}

TEST(TimeDistributed, AppliesSameMapEachStep) {
  core::Rng rng(12);
  TimeDistributed td(2, 3, rng);
  Tensor x({1, 4, 2});
  for (int t = 0; t < 4; ++t) {
    x.at(0, t, 0) = 1.0;
    x.at(0, t, 1) = -1.0;
  }
  Variable y = td.Forward(Variable(x));
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 4, 3}));
  for (int t = 1; t < 4; ++t) {
    for (int f = 0; f < 3; ++f) {
      EXPECT_DOUBLE_EQ(y.value().at(0, t, f), y.value().at(0, 0, f));
    }
  }
}

TEST(Module, GetSetStateRoundTripsParameters) {
  core::Rng rng(13);
  Linear a(3, 2, rng);
  const std::vector<Tensor> state = a.GetState();
  Linear b(3, 2, rng);  // different init
  b.SetState(state);
  Variable x(Tensor({1, 3}, 1.0));
  EXPECT_EQ(a.Forward(x).value(), b.Forward(x).value());
}

TEST(Optimizer, SgdMomentumDescendsQuadratic)
{
  Variable w(Tensor::Scalar(5.0), /*requires_grad=*/true);
  Sgd sgd({w}, 0.02, 0.9);
  for (int i = 0; i < 300; ++i) {
    sgd.ZeroGrad();
    Variable loss = Mul(w, w);
    loss.Backward();
    sgd.Step();
  }
  EXPECT_LT(std::fabs(w.value().scalar()), 1e-3);
}

TEST(Optimizer, AdamDescendsIllConditionedQuadratic) {
  Variable w1(Tensor::Scalar(3.0), true);
  Variable w2(Tensor::Scalar(-4.0), true);
  Adam adam({w1, w2}, 0.1);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    // f = 100*w1^2 + 0.01*w2^2.
    Variable loss = Add(ScaleBy(Mul(w1, w1), 100.0), ScaleBy(Mul(w2, w2), 0.01));
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(std::fabs(w1.value().scalar()), 1e-2);
  EXPECT_LT(std::fabs(w2.value().scalar()), 1.0);
}

}  // namespace
}  // namespace tsaug::nn
