#include "nn/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tsaug::nn {
namespace {

/// Minimal logistic-regression-style net over [n, 1, T]: GAP + Linear.
class TinyNet : public SequenceClassifierNet {
 public:
  TinyNet(int channels, int classes, core::Rng& rng)
      : linear_(channels, classes, rng), classes_(classes) {}

  Variable Forward(const Variable& batch) override {
    return linear_.Forward(GlobalAvgPool(batch));
  }
  int num_classes() const override { return classes_; }
  std::vector<Module*> Children() override { return {&linear_}; }

 private:
  Linear linear_;
  int classes_;
};

// Class k has channel mean ~= 2k.
void MakeData(int n, Tensor* x, std::vector<int>* y, std::uint64_t seed) {
  core::Rng rng(seed);
  *x = Tensor({n, 1, 8});
  y->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    (*y)[static_cast<size_t>(i)] = label;
    for (int t = 0; t < 8; ++t) {
      x->at(i, 0, t) = 2.0 * label + rng.Normal(0, 0.3);
    }
  }
}

TEST(GatherBatch, CopiesRequestedRows) {
  Tensor x({3, 2, 2});
  for (size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<double>(i);
  const Tensor batch = GatherBatch(x, {2, 0});
  EXPECT_EQ(batch.shape(), (std::vector<int>{2, 2, 2}));
  EXPECT_DOUBLE_EQ(batch.at(0, 0, 0), x.at(2, 0, 0));
  EXPECT_DOUBLE_EQ(batch.at(1, 1, 1), x.at(0, 1, 1));
}

TEST(TrainClassifier, LearnsLinearlySeparableTask) {
  Tensor x_train;
  std::vector<int> y_train;
  MakeData(40, &x_train, &y_train, 1);
  Tensor x_val;
  std::vector<int> y_val;
  MakeData(16, &x_val, &y_val, 2);

  core::Rng rng(3);
  TinyNet net(1, 2, rng);
  TrainerConfig config;
  config.max_epochs = 60;
  config.early_stopping_patience = 60;
  config.learning_rate = 0.05;
  config.batch_size = 8;
  const TrainResult result =
      TrainClassifier(net, x_train, y_train, x_val, y_val, config, rng);
  EXPECT_GE(result.best_val_accuracy, 0.9);
  EXPECT_EQ(static_cast<int>(result.epoch_train_losses.size()),
            result.epochs_run);
  // Loss decreased overall.
  EXPECT_LT(result.epoch_train_losses.back(),
            result.epoch_train_losses.front());
}

TEST(TrainClassifier, EarlyStoppingLimitsEpochs) {
  Tensor x_train;
  std::vector<int> y_train;
  MakeData(20, &x_train, &y_train, 4);
  // Validation labels are pure noise: accuracy cannot improve steadily.
  Tensor x_val;
  std::vector<int> y_val;
  MakeData(10, &x_val, &y_val, 5);
  core::Rng label_rng(6);
  for (int& label : y_val) label = label_rng.Int(0, 1);

  core::Rng rng(7);
  TinyNet net(1, 2, rng);
  TrainerConfig config;
  config.max_epochs = 200;
  config.early_stopping_patience = 5;
  config.learning_rate = 0.05;
  const TrainResult result =
      TrainClassifier(net, x_train, y_train, x_val, y_val, config, rng);
  EXPECT_LT(result.epochs_run, 200);
}

TEST(EvaluateLoss, MatchesDirectCrossEntropy) {
  core::Rng rng(8);
  TinyNet net(1, 2, rng);
  Tensor x;
  std::vector<int> y;
  MakeData(12, &x, &y, 9);
  const double loss = EvaluateLoss(net, x, y, /*batch_size=*/5);
  // Compare against one full-batch forward.
  std::vector<int> all(12);
  for (int i = 0; i < 12; ++i) all[static_cast<size_t>(i)] = i;
  const Variable logits = net.Forward(Variable(GatherBatch(x, all)));
  const double direct = SoftmaxCrossEntropy(logits, y).value().scalar();
  EXPECT_NEAR(loss, direct, 1e-9);
}

TEST(EvaluateAccuracy, PerfectAndChanceBounds) {
  core::Rng rng(10);
  TinyNet net(1, 2, rng);
  Tensor x;
  std::vector<int> y;
  MakeData(10, &x, &y, 11);
  const double accuracy = EvaluateAccuracy(net, x, y);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST(PredictLabels, BatchBoundaryExact) {
  // n not divisible by batch size: every instance still predicted.
  core::Rng rng(12);
  TinyNet net(1, 3, rng);
  Tensor x({7, 1, 8}, 0.5);
  const std::vector<int> predictions = PredictLabels(net, x, /*batch_size=*/3);
  EXPECT_EQ(predictions.size(), 7u);
  for (int p : predictions) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

}  // namespace
}  // namespace tsaug::nn
