// End-to-end fault tolerance of the experiment harness: faults injected
// into the ridge solver, the nn trainer and SMOTE must degrade exactly the
// targeted grid cells — recorded failed with the right Status code —
// while the rest of the grid completes, and the whole (partially failed)
// row must stay bitwise identical at any thread count.
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "augment/noise.h"
#include "augment/oversample.h"
#include "augment/timegan.h"
#include "core/faultpoint.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/status.h"
#include "eval/experiment.h"

namespace tsaug::eval {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(core::GetNumThreads()) {}
  ~ThreadCountGuard() { core::SetNumThreads(saved_); }

 private:
  int saved_;
};

class FaultSpecGuard {
 public:
  explicit FaultSpecGuard(const std::string& spec) {
    core::fault::SetSpec(spec);
  }
  ~FaultSpecGuard() { core::fault::Clear(); }
};

data::TrainTest SmallData(std::uint64_t seed = 1) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {14, 6};
  spec.test_counts = {6, 6};
  spec.num_channels = 2;
  spec.length = 24;
  spec.class_separation = 1.4;
  spec.seed = seed;
  return data::MakeSynthetic(spec);
}

ExperimentConfig RocketConfig(int runs = 2) {
  ExperimentConfig config;
  config.model = ModelKind::kRocket;
  config.runs = runs;
  config.rocket_kernels = 80;
  config.seed = 5;
  return config;
}

ExperimentConfig InceptionConfig() {
  ExperimentConfig config;
  config.model = ModelKind::kInceptionTime;
  config.runs = 1;
  config.inception.num_filters = 3;
  config.inception.depth = 3;
  config.inception.kernel_sizes = {4, 8};
  config.inception.bottleneck_channels = 3;
  config.inception.ensemble_size = 1;
  config.inception.trainer.max_epochs = 4;
  config.inception.trainer.early_stopping_patience = 4;
  config.inception.trainer.learning_rate = 5e-3;
  config.seed = 5;
  return config;
}

std::vector<std::shared_ptr<augment::Augmenter>> Techniques() {
  // Fresh augmenters per grid run: they cache per-train-set state.
  return {std::make_shared<augment::NoiseInjection>(1.0),
          std::make_shared<augment::Smote>()};
}

DatasetRow RunToyGrid(const ExperimentConfig& config,
                      const data::TrainTest& data) {
  return RunDatasetGrid("toy", data, Techniques(), config);
}

TEST(FaultTolerance, CleanGridReportsNoFailuresOrRetries) {
  core::fault::Clear();
  const data::TrainTest data = SmallData(2);
  const DatasetRow row = RunToyGrid(RocketConfig(), data);
  EXPECT_EQ(row.baseline_failed_runs, 0);
  EXPECT_EQ(row.baseline_retries, 0);
  EXPECT_TRUE(row.baseline_error.ok());
  for (const CellResult& cell : row.cells) {
    EXPECT_EQ(cell.failed_runs, 0) << cell.technique;
    EXPECT_EQ(cell.recovered_retries, 0) << cell.technique;
    EXPECT_TRUE(cell.last_error.ok()) << cell.technique;
  }
}

TEST(FaultTolerance, InjectedFaultsDegradeOnlyTargetedCells) {
  const data::TrainTest data = SmallData(2);

  core::fault::Clear();
  const DatasetRow clean = RunToyGrid(RocketConfig(), data);

  // run0/smote: the augmentation itself fails (SMOTE fault point).
  // run1/noise_1.0: every ridge solve fails, exhausting alpha escalation.
  // run0/baseline: one ridge solve fails, recovered by alpha escalation.
  FaultSpecGuard faults(
      "smote.generate@run0/smote:1,"
      "ridge.solve@run1/noise_1.0:1+,"
      "ridge.solve@run0/baseline:1");
  const DatasetRow row = RunToyGrid(RocketConfig(), data);

  ASSERT_EQ(row.cells.size(), 2u);
  const CellResult& noise = row.cells[0];
  const CellResult& smote = row.cells[1];

  // The smote cell failed in the augmentation phase with the fault's code.
  EXPECT_EQ(smote.failed_runs, 1);
  EXPECT_EQ(smote.last_error.code(), core::StatusCode::kInjectedFault);
  EXPECT_NE(smote.last_error.context().find("smote.generate"),
            std::string::npos);

  // The noise cell failed in training after alpha escalation ran dry.
  EXPECT_EQ(noise.failed_runs, 1);
  EXPECT_EQ(noise.last_error.code(), core::StatusCode::kInjectedFault);
  EXPECT_NE(noise.last_error.context().find("alpha escalation exhausted"),
            std::string::npos);

  // The baseline recovered: no failure, but the retry is visible.
  EXPECT_EQ(row.baseline_failed_runs, 0);
  EXPECT_GE(row.baseline_retries, 1);

  // Failed runs are excluded from the mean, not counted as 0: each cell
  // still reports a finite accuracy over its one successful run.
  EXPECT_TRUE(std::isfinite(smote.accuracy));
  EXPECT_TRUE(std::isfinite(noise.accuracy));
  EXPECT_GT(smote.accuracy, 0.0);
  EXPECT_GT(noise.accuracy, 0.0);
}

TEST(FaultTolerance, UnaffectedCellsBitwiseEqualCleanRun) {
  const data::TrainTest data = SmallData(2);

  core::fault::Clear();
  const DatasetRow clean = RunToyGrid(RocketConfig(), data);

  // Only the smote cells are targeted; baseline and noise must be
  // bitwise identical to the clean run (recovery work happens inside the
  // failed cell only).
  FaultSpecGuard faults("smote.generate@/smote:1+");
  const DatasetRow row = RunToyGrid(RocketConfig(), data);

  EXPECT_EQ(row.baseline_accuracy, clean.baseline_accuracy);
  EXPECT_EQ(row.cells[0].accuracy, clean.cells[0].accuracy);
  EXPECT_EQ(row.cells[1].failed_runs, 2);
  // Every run of the cell failed: its accuracy is NaN (not a fake 0) and
  // aggregate statistics skip it.
  EXPECT_TRUE(std::isnan(row.cells[1].accuracy));
  EXPECT_EQ(row.BestTechnique(), "noise_1.0");
}

TEST(FaultTolerance, InjectedGridDeterministicAcrossThreadCounts) {
  ThreadCountGuard guard;
  const data::TrainTest data = SmallData(2);
  const std::string spec =
      "smote.generate@run0/smote:1,ridge.solve@run1/noise_1.0:1+";

  // SetSpec before every grid run: hit counters are keyed by (rule,
  // domain) and the domains repeat across runs of the same grid.
  core::fault::SetSpec(spec);
  core::SetNumThreads(1);
  const DatasetRow reference = RunToyGrid(RocketConfig(), data);

  for (int threads : {2, 8}) {
    core::SetNumThreads(threads);
    core::fault::SetSpec(spec);
    const DatasetRow row = RunToyGrid(RocketConfig(), data);
    EXPECT_EQ(row.baseline_accuracy, reference.baseline_accuracy)
        << threads << " threads";
    ASSERT_EQ(row.cells.size(), reference.cells.size());
    for (size_t i = 0; i < reference.cells.size(); ++i) {
      EXPECT_EQ(row.cells[i].accuracy, reference.cells[i].accuracy)
          << reference.cells[i].technique << ", " << threads << " threads";
      EXPECT_EQ(row.cells[i].failed_runs, reference.cells[i].failed_runs)
          << reference.cells[i].technique << ", " << threads << " threads";
      EXPECT_EQ(row.cells[i].last_error, reference.cells[i].last_error)
          << reference.cells[i].technique << ", " << threads << " threads";
    }
  }
  core::fault::Clear();
}

TEST(FaultTolerance, TrainerDivergenceRecoversWithinBudget) {
  const data::TrainTest data = SmallData(3);

  // One poisoned training step: the trainer detects the non-finite loss,
  // restores the best checkpoint, halves the learning rate and goes on.
  FaultSpecGuard faults("trainer.step@run0/baseline:1");
  const DatasetRow row = RunToyGrid(InceptionConfig(), data);
  EXPECT_EQ(row.baseline_failed_runs, 0);
  EXPECT_GE(row.baseline_retries, 1);
}

TEST(FaultTolerance, TrainerDivergenceExhaustionFailsOnlyThatCell) {
  const data::TrainTest data = SmallData(3);

  // Every step poisoned: retries run dry and the cell fails kDiverged;
  // the augmented cells still complete.
  FaultSpecGuard faults("trainer.step@run0/baseline:1+");
  const DatasetRow row = RunToyGrid(InceptionConfig(), data);
  EXPECT_EQ(row.baseline_failed_runs, 1);
  EXPECT_EQ(row.baseline_error.code(), core::StatusCode::kDiverged);
  // The single run failed, so the baseline has no successful run to
  // average: NaN, and the improvement statistic goes n/a instead of
  // dividing by a bogus 0 baseline.
  EXPECT_TRUE(std::isnan(row.baseline_accuracy));
  EXPECT_TRUE(std::isnan(row.ImprovementPercent()));
  for (const CellResult& cell : row.cells) {
    EXPECT_EQ(cell.failed_runs, 0) << cell.technique;
    EXPECT_GT(cell.accuracy, 0.0) << cell.technique;
  }
}

TEST(FaultTolerance, TinyCellBudgetFailsCellsButGridCompletes) {
  core::fault::Clear();
  const data::TrainTest data = SmallData(2);
  ExperimentConfig config = RocketConfig(/*runs=*/1);
  // A budget this small expires before the first poll: every cell is
  // recorded kDeadlineExceeded, but the grid itself still finishes every
  // run — a slow cell must never take the sweep down with it.
  config.cell_budget_seconds = 1e-9;
  const DatasetRow row = RunToyGrid(config, data);
  EXPECT_FALSE(row.interrupted);
  EXPECT_EQ(row.baseline_failed_runs, 1);
  EXPECT_EQ(row.baseline_error.code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(std::isnan(row.baseline_accuracy));
  for (const CellResult& cell : row.cells) {
    EXPECT_EQ(cell.failed_runs, 1) << cell.technique;
    EXPECT_EQ(cell.last_error.code(), core::StatusCode::kDeadlineExceeded)
        << cell.technique;
  }
}

TEST(FaultTolerance, InjectedDeadlineFailsOnlyTargetedCell) {
  const data::TrainTest data = SmallData(2);
  // The injected deadline needs no real timing: the first poll under the
  // smote cell's domain reports kDeadlineExceeded deterministically.
  FaultSpecGuard faults("cancel.deadline@run0/smote:1");
  const DatasetRow row = RunToyGrid(RocketConfig(/*runs=*/1), data);
  EXPECT_FALSE(row.interrupted);
  EXPECT_EQ(row.cells[1].failed_runs, 1);
  EXPECT_EQ(row.cells[1].last_error.code(),
            core::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(std::isnan(row.cells[1].accuracy));
  EXPECT_EQ(row.baseline_failed_runs, 0);
  EXPECT_EQ(row.cells[0].failed_runs, 0);
  EXPECT_TRUE(std::isfinite(row.baseline_accuracy));
}

TEST(FaultTolerance, InjectedStopAtRunBoundaryInterruptsGrid) {
  const data::TrainTest data = SmallData(2);

  core::fault::Clear();
  const DatasetRow clean = RunToyGrid(RocketConfig(/*runs=*/1), data);

  // Stop exactly at run 1's boundary poll: run 0 completes and is folded
  // in, run 1 never starts; the partial row equals a 1-run grid bit for
  // bit and is marked interrupted.
  FaultSpecGuard faults("cancel.stop@grid/toy/run1:1");
  const DatasetRow row = RunToyGrid(RocketConfig(/*runs=*/2), data);
  EXPECT_TRUE(row.interrupted);
  EXPECT_EQ(row.baseline_failed_runs, 0);
  EXPECT_EQ(row.baseline_accuracy, clean.baseline_accuracy);
  for (size_t i = 0; i < row.cells.size(); ++i) {
    EXPECT_EQ(row.cells[i].accuracy, clean.cells[i].accuracy)
        << row.cells[i].technique;
  }
}

TEST(FaultTolerance, InjectedStopMidRunDiscardsTheRun) {
  const data::TrainTest data = SmallData(2);
  // A stop request that lands inside run 0 (at the smote cell's start
  // poll) discards the whole partially-evaluated run: nothing of run 0
  // reaches the row, which is marked interrupted.
  FaultSpecGuard faults("cancel.stop@cell/toy/run0/smote:1");
  const DatasetRow row = RunToyGrid(RocketConfig(/*runs=*/1), data);
  EXPECT_TRUE(row.interrupted);
  EXPECT_TRUE(std::isnan(row.baseline_accuracy));
  EXPECT_EQ(row.baseline_failed_runs, 0);
  for (const CellResult& cell : row.cells) {
    EXPECT_TRUE(std::isnan(cell.accuracy)) << cell.technique;
    EXPECT_EQ(cell.failed_runs, 0) << cell.technique;
  }
}

TEST(FaultTolerance, TimeGanFallbackDegradesGracefully) {
  const data::TrainTest data = SmallData(4);
  augment::TimeGanConfig config;
  config.embedding_iterations = 2;
  config.supervised_iterations = 2;
  config.joint_iterations = 1;

  // GAN training is injected to fail; the augmenter degrades to its
  // configured fallback instead of failing the cell.
  FaultSpecGuard faults("timegan.fit:1+");
  augment::TimeGanAugmenter with_fallback(
      config, std::make_unique<augment::Smote>());
  core::Rng rng(7);
  core::StatusOr<std::vector<core::TimeSeries>> generated =
      with_fallback.TryGenerate(data.train, 0, 4, rng);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_EQ(generated.value().size(), 4u);

  // Without a fallback the Status propagates to the caller.
  augment::TimeGanAugmenter no_fallback(config);
  core::StatusOr<std::vector<core::TimeSeries>> failed =
      no_fallback.TryGenerate(data.train, 0, 4, rng);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), core::StatusCode::kInjectedFault);
}

}  // namespace
}  // namespace tsaug::eval
