// End-to-end serving tests against a real serve_main child process
// (path in TSAUG_SERVE_BIN, wired by tests/CMakeLists.txt): real TCP
// round trips, per-request errors typed in the response Status, fault
// injection at the accept/dispatch seams, idle-connection reaping,
// graceful SIGTERM drain, and
// the tentpole property — responses under 32 concurrent clients are
// bitwise identical to a single-client run of the same request set,
// while the trace counters prove cross-request batches actually formed
// (mean occupancy > 1.5).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.h"
#include "serve/frame.h"
#include "serve/loadgen.h"

namespace tsaug::serve {
namespace {

const char* ServerBinary() { return std::getenv("TSAUG_SERVE_BIN"); }

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Counter value out of a --trace-json report ("name":value, see
/// trace::ReportJson); 0 when absent.
std::int64_t CounterFromJson(const std::string& json,
                             const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const std::size_t pos = json.find(key);
  if (pos == std::string::npos) return 0;
  return std::atoll(json.c_str() + pos + key.size());
}

/// A serve_main child: fork/exec with a port-file handshake, SIGTERM to
/// stop. The trace JSON lands only after a clean drain, so reading it
/// doubles as a drain-ordering check.
class ServerProcess {
 public:
  /// `faults` sets TSAUG_FAULTS in the child ("" = none).
  void Start(const std::string& tag,
             const std::vector<std::string>& extra_flags = {},
             const std::string& faults = "") {
    ASSERT_NE(ServerBinary(), nullptr);
    port_file_ = TempPath("serve_port_" + tag);
    trace_file_ = TempPath("serve_trace_" + tag + ".json");
    std::filesystem::remove(port_file_);
    std::filesystem::remove(trace_file_);
    std::vector<std::string> args = {ServerBinary(),   "--port-file",
                                     port_file_,       "--trace-json",
                                     trace_file_};
    args.insert(args.end(), extra_flags.begin(), extra_flags.end());
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      if (!faults.empty()) setenv("TSAUG_FAULTS", faults.c_str(), 1);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    // Handshake: the child writes its bound port once listening.
    for (int tries = 0; tries < 500; ++tries) {
      const std::string text = ReadAll(port_file_);
      if (!text.empty() && text.back() == '\n') {
        port_ = std::atoi(text.c_str());
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_GT(port_, 0) << "server never wrote its port file";
  }

  /// SIGTERM + reap; returns true on a clean (exit 0) drain.
  bool StopCleanly() {
    if (pid_ < 0) return false;
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  ~ServerProcess() {
    if (pid_ >= 0) {
      kill(pid_, SIGKILL);
      int status = 0;
      waitpid(pid_, &status, 0);
    }
  }

  int port() const { return port_; }
  std::string trace() const { return ReadAll(trace_file_); }

 private:
  pid_t pid_ = -1;
  int port_ = 0;
  std::string port_file_;
  std::string trace_file_;
};

TEST(ServeE2eTest, RoundTripsAndTypedPerRequestErrors) {
  if (ServerBinary() == nullptr) GTEST_SKIP() << "TSAUG_SERVE_BIN unset";
  ServerProcess server;
  server.Start("roundtrip");
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  AugmentRequest augment;
  augment.request_id = 1;
  augment.seed = 99;
  augment.technique = "scaling";
  augment.label = 0;
  augment.count = 3;
  core::StatusOr<AugmentResponse> generated = client.Augment(augment);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_EQ(generated->request_id, 1u);
  EXPECT_TRUE(generated->status.ok()) << generated->status.ToString();
  ASSERT_EQ(generated->series.size(), 3u);
  EXPECT_EQ(generated->series[0].num_channels(), 2);
  EXPECT_EQ(generated->series[0].length(), 32);

  // Identical request, identical bytes: the response is a function of the
  // request alone (fresh Rng(seed) server-side).
  core::StatusOr<AugmentResponse> again = client.Augment(augment);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(EncodeFrame(*again), EncodeFrame(*generated));

  // Per-request failures are typed in the response Status; the
  // connection survives them.
  augment.technique = "no_such_technique";
  core::StatusOr<AugmentResponse> unknown = client.Augment(augment);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status.code(), core::StatusCode::kInvalidArgument);

  ScoreRequest score;
  score.request_id = 2;
  score.series = core::TimeSeries(2, 32, 0.25);
  core::StatusOr<ScoreResponse> scored = client.Score(score);
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  EXPECT_TRUE(scored->status.ok());
  EXPECT_GE(scored->label, 0);
  EXPECT_LT(scored->label, 2);

  score.series = core::TimeSeries(1, 7);  // wrong geometry
  core::StatusOr<ScoreResponse> bad = client.Score(score);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status.code(), core::StatusCode::kInvalidArgument);

  EXPECT_TRUE(server.StopCleanly());
}

TEST(ServeE2eTest, ConcurrentClientsBatchAndMatchSequentialBitwise) {
  if (ServerBinary() == nullptr) GTEST_SKIP() << "TSAUG_SERVE_BIN unset";
  // Concurrent pass: 32 clients share one server; the linger window lets
  // their requests coalesce into cross-request batches.
  LoadConfig load;
  load.connections = 32;
  load.requests_per_connection = 10;
  ServerProcess batched_server;
  batched_server.Start("concurrent", {"--linger-ms", "5"});
  load.port = batched_server.port();
  core::StatusOr<LoadReport> concurrent = RunLoad(load);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  EXPECT_EQ(concurrent->requests, 320);
  EXPECT_EQ(concurrent->errors, 0);
  ASSERT_TRUE(batched_server.StopCleanly());

  // The trace counters prove real coalescing: mean occupancy over 1.5
  // (the ISSUE's acceptance bar; in practice it is far higher).
  const std::string trace = batched_server.trace();
  const std::int64_t batches = CounterFromJson(trace, "serve.batches");
  const std::int64_t batched =
      CounterFromJson(trace, "serve.batched_requests");
  ASSERT_GT(batches, 0);
  EXPECT_EQ(batched, 320);
  EXPECT_GT(static_cast<double>(batched) / static_cast<double>(batches), 1.5)
      << "batches=" << batches << " batched_requests=" << batched;

  // Sequential pass: a fresh server, one client, the same 320 requests
  // (the workload is a pure function of the global index), no coalescing
  // (linger 0). Every response must match bitwise.
  LoadConfig sequential_load = load;
  sequential_load.connections = 1;
  sequential_load.requests_per_connection = 320;
  ServerProcess sequential_server;
  sequential_server.Start("sequential", {"--linger-ms", "0"});
  sequential_load.port = sequential_server.port();
  core::StatusOr<LoadReport> sequential = RunLoad(sequential_load);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  EXPECT_EQ(sequential->errors, 0);
  EXPECT_TRUE(sequential_server.StopCleanly());

  ASSERT_EQ(concurrent->response_frames.size(),
            sequential->response_frames.size());
  for (std::size_t g = 0; g < concurrent->response_frames.size(); ++g) {
    ASSERT_FALSE(concurrent->response_frames[g].empty()) << "request " << g;
    ASSERT_EQ(concurrent->response_frames[g], sequential->response_frames[g])
        << "request " << g
        << ": batched response differs from sequential response";
  }
}

TEST(ServeE2eTest, SigtermDrainsQueuedRequests) {
  if (ServerBinary() == nullptr) GTEST_SKIP() << "TSAUG_SERVE_BIN unset";
  // A long linger and a large max batch park admitted requests in the
  // queue; SIGTERM must flush them — every client still gets its OK
  // response, then the server exits 0.
  ServerProcess server;
  server.Start("drain", {"--linger-ms", "2000", "--max-batch", "64"});

  constexpr int kClients = 5;
  std::vector<std::string> frames(kClients);
  std::vector<core::Status> statuses(kClients,
                                     core::UnavailableError("never ran"));
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client client;
      const core::Status connected =
          client.Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        statuses[static_cast<std::size_t>(i)] = connected;
        return;
      }
      AugmentRequest request;
      request.request_id = static_cast<std::uint64_t>(i);
      request.seed = static_cast<std::uint64_t>(i) + 1;
      request.technique = "masking";
      request.count = 1;
      core::StatusOr<AugmentResponse> response = client.Augment(request);
      if (!response.ok()) {
        statuses[static_cast<std::size_t>(i)] = response.status();
        return;
      }
      statuses[static_cast<std::size_t>(i)] = response->status;
      frames[static_cast<std::size_t>(i)] = EncodeFrame(*response);
    });
  }
  // Give the requests time to be admitted (they then sit in the 2 s
  // linger window), then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(server.StopCleanly());
  for (std::thread& thread : clients) thread.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(statuses[static_cast<std::size_t>(i)].ok())
        << "client " << i << ": "
        << statuses[static_cast<std::size_t>(i)].ToString();
    EXPECT_FALSE(frames[static_cast<std::size_t>(i)].empty());
  }
  // The drain answered everything it admitted.
  const std::string trace = server.trace();
  EXPECT_EQ(CounterFromJson(trace, "serve.submitted"),
            CounterFromJson(trace, "serve.batched_requests"));
}

TEST(ServeE2eTest, AdmissionControlRejectsWithUnavailable) {
  if (ServerBinary() == nullptr) GTEST_SKIP() << "TSAUG_SERVE_BIN unset";
  // Queue depth 1 and a long linger: the first request parks in the
  // queue, the second must be rejected with a typed kUnavailable —
  // loudly, immediately, with the connection intact.
  ServerProcess server;
  server.Start("overload", {"--linger-ms", "2000", "--max-batch", "64",
                            "--max-queue-depth", "1"});
  Client parked_client;
  ASSERT_TRUE(parked_client.Connect("127.0.0.1", server.port()).ok());
  AugmentRequest request;
  request.request_id = 1;
  request.technique = "masking";
  request.count = 1;
  std::thread parked([&] {
    core::StatusOr<AugmentResponse> response = parked_client.Augment(request);
    EXPECT_TRUE(response.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  Client rejected_client;
  ASSERT_TRUE(rejected_client.Connect("127.0.0.1", server.port()).ok());
  AugmentRequest second = request;
  second.request_id = 2;
  core::StatusOr<AugmentResponse> rejected = rejected_client.Augment(second);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status.code(), core::StatusCode::kUnavailable);

  EXPECT_TRUE(server.StopCleanly());
  parked.join();
  const std::string trace = server.trace();
  EXPECT_GE(CounterFromJson(trace, "serve.rejected"), 1);
}

TEST(ServeE2eTest, IdleConnectionsAreClosedButActiveOnesSurvive) {
  if (ServerBinary() == nullptr) GTEST_SKIP() << "TSAUG_SERVE_BIN unset";
  ServerProcess server;
  server.Start("idle", {"--idle-timeout-ms", "300"});

  AugmentRequest request;
  request.request_id = 1;
  request.technique = "masking";
  request.count = 1;

  // An active client outlives the timeout: each round trip resets the
  // idle clock, so 3 x 150 ms gaps (450 ms total, every gap under 300 ms)
  // never trip it.
  Client active;
  ASSERT_TRUE(active.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    core::StatusOr<AugmentResponse> response = active.Augment(request);
    ASSERT_TRUE(response.ok())
        << "round trip " << i << ": " << response.status().ToString();
    EXPECT_TRUE(response->status.ok());
  }

  // A client that goes quiet past the timeout is closed server-side; its
  // next round trip fails at the transport level instead of hanging.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  core::StatusOr<AugmentResponse> late = active.Augment(request);
  EXPECT_FALSE(late.ok());

  // The server itself is healthy: fresh connections still round-trip.
  Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  core::StatusOr<AugmentResponse> healthy = fresh.Augment(request);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_TRUE(healthy->status.ok());

  EXPECT_TRUE(server.StopCleanly());
  EXPECT_GE(CounterFromJson(server.trace(), "serve.idle_closed"), 1);
}

TEST(ServeE2eTest, DispatchFaultFailsTheBatchWithTypedResponses) {
  if (ServerBinary() == nullptr) GTEST_SKIP() << "TSAUG_SERVE_BIN unset";
  ServerProcess server;
  server.Start("dispatchfault", {}, /*faults=*/"serve.dispatch:1");
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  AugmentRequest request;
  request.request_id = 7;
  request.technique = "masking";
  request.count = 1;
  // First batch hits the injected fault: the request is answered (not
  // dropped) with kInjectedFault.
  core::StatusOr<AugmentResponse> faulted = client.Augment(request);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->status.code(), core::StatusCode::kInjectedFault);
  // The rule fires once; the next batch executes normally.
  core::StatusOr<AugmentResponse> healthy = client.Augment(request);
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy->status.ok()) << healthy->status.ToString();
  EXPECT_TRUE(server.StopCleanly());
}

TEST(ServeE2eTest, AcceptFaultDropsOneConnectionThenRecovers) {
  if (ServerBinary() == nullptr) GTEST_SKIP() << "TSAUG_SERVE_BIN unset";
  ServerProcess server;
  server.Start("acceptfault", {}, /*faults=*/"serve.accept:1");
  // The first accepted connection is dropped by the injected fault: the
  // round trip fails at the transport level, never hangs.
  Client dropped;
  AugmentRequest request;
  request.request_id = 1;
  request.technique = "masking";
  request.count = 1;
  bool first_failed = false;
  if (dropped.Connect("127.0.0.1", server.port()).ok()) {
    first_failed = !dropped.Augment(request).ok();
  } else {
    first_failed = true;
  }
  EXPECT_TRUE(first_failed);
  // The server keeps accepting afterwards.
  Client healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());
  core::StatusOr<AugmentResponse> response = healthy.Augment(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
  EXPECT_TRUE(server.StopCleanly());
}

}  // namespace
}  // namespace tsaug::serve
