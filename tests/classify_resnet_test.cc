#include "classify/resnet.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace tsaug::classify {
namespace {

ResNetConfig TinyResNet() {
  ResNetConfig config;
  config.block_filters = {4, 6, 6};
  config.trainer.max_epochs = 30;
  config.trainer.early_stopping_patience = 30;
  config.trainer.learning_rate = 3e-3;
  config.trainer.batch_size = 16;
  return config;
}

TEST(ResidualBlock, OutputShape) {
  core::Rng rng(1);
  ResidualBlock block(3, 5, rng);
  EXPECT_EQ(block.out_channels(), 5);
  nn::Variable x(nn::Tensor({2, 3, 16}, 0.5));
  EXPECT_EQ(block.Forward(x).shape(), (std::vector<int>{2, 5, 16}));
}

TEST(ResNetNetwork, LogitsShapeAndGradients) {
  core::Rng rng(2);
  ResNetNetwork net(2, 3, TinyResNet(), rng);
  nn::Tensor x({3, 2, 20});
  core::Rng data_rng(3);
  for (double& v : x.data()) v = data_rng.Normal();
  nn::Variable logits = net.Forward(nn::Variable(x));
  EXPECT_EQ(logits.shape(), (std::vector<int>{3, 3}));

  nn::Variable loss = nn::SoftmaxCrossEntropy(logits, {0, 1, 2});
  loss.Backward();
  int touched = 0;
  for (const nn::Variable& p : net.AllParameters()) {
    double norm = 0.0;
    for (size_t i = 0; i < p.grad().numel(); ++i) norm += std::abs(p.grad()[i]);
    touched += norm > 0.0 ? 1 : 0;
  }
  EXPECT_EQ(touched, static_cast<int>(net.AllParameters().size()));
}

TEST(ResNetClassifier, LearnsSeparableClasses) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {18, 18};
  spec.test_counts = {8, 8};
  spec.num_channels = 2;
  spec.length = 24;
  spec.class_separation = 1.5;
  spec.seed = 4;
  const data::TrainTest data = data::MakeSynthetic(spec);

  ResNetClassifier clf(TinyResNet(), 5);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.7);
  EXPECT_GT(clf.train_result().best_val_accuracy, 0.5);
}

TEST(ResNetClassifier, ExplicitValidationSplit) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {12, 12};
  spec.test_counts = {4, 4};
  spec.num_channels = 1;
  spec.length = 16;
  spec.class_separation = 1.5;
  spec.seed = 6;
  const data::TrainTest data = data::MakeSynthetic(spec);

  core::Rng rng(7);
  const auto [train_part, val_part] = data.train.StratifiedSplit(2.0 / 3.0, rng);
  ResNetClassifier clf(TinyResNet(), 8);
  clf.FitWithValidation(train_part, val_part);
  EXPECT_EQ(clf.Predict(data.test).size(), 8u);
}

}  // namespace
}  // namespace tsaug::classify
