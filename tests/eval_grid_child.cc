// Helper binary for eval_journal_resume_test (not a gtest): runs one
// fixed toy grid in a child process so the test can kill it mid-grid
// (TSAUG_FAULTS=journal.flush:N!) and resume against the same journal.
//
// Environment contract:
//   TSAUG_CHILD_OUT      (required) path for the canonical result dump
//   TSAUG_CHILD_JOURNAL  journal path; empty/unset runs without a journal
//   TSAUG_CHILD_BUDGET   optional per-cell budget in seconds
//
// The dump prints every cell's accuracy as its IEEE-754 bit pattern, so
// "resumed run == straight run" can be checked as byte equality of two
// small text files. Resume bookkeeping (resumed_runs/resumed_cells) is
// deliberately excluded: it differs between the two runs by design.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "augment/augmenter.h"
#include "augment/noise.h"
#include "augment/oversample.h"
#include "core/status.h"
#include "data/synthetic.h"
#include "eval/experiment.h"

namespace {

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

std::uint64_t Bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void DumpCell(std::ostream& out, const std::string& name, double accuracy,
              int failed_runs, int retries,
              const tsaug::core::Status& error) {
  out << name << " bits=" << Bits(accuracy) << " failed=" << failed_runs
      << " retries=" << retries << " err=" << error.ToString() << "\n";
}

}  // namespace

int main() {
  using tsaug::augment::Augmenter;
  using tsaug::eval::CellResult;
  using tsaug::eval::DatasetRow;

  const std::string out_path = EnvOr("TSAUG_CHILD_OUT", "");
  if (out_path.empty()) {
    std::cerr << "eval_grid_child: TSAUG_CHILD_OUT is required\n";
    return 2;
  }

  // The same toy problem as eval_fault_tolerance_test: small enough to run
  // a 3-run grid in well under a second, non-trivial enough that every
  // cell's accuracy depends on the run seed.
  tsaug::data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {14, 6};
  spec.test_counts = {6, 6};
  spec.num_channels = 2;
  spec.length = 24;
  spec.class_separation = 1.4;
  spec.seed = 2;
  const tsaug::data::TrainTest data = tsaug::data::MakeSynthetic(spec);

  tsaug::eval::ExperimentConfig config;
  config.model = tsaug::eval::ModelKind::kRocket;
  config.runs = 3;
  config.rocket_kernels = 80;
  config.seed = 5;
  config.journal_path = EnvOr("TSAUG_CHILD_JOURNAL", "");
  config.cell_budget_seconds = std::atof(EnvOr("TSAUG_CHILD_BUDGET", "0").c_str());

  const std::vector<std::shared_ptr<Augmenter>> techniques = {
      std::make_shared<tsaug::augment::NoiseInjection>(1.0),
      std::make_shared<tsaug::augment::Smote>()};

  const tsaug::core::StatusOr<DatasetRow> row =
      tsaug::eval::TryRunDatasetGrid("toy", data, techniques, config);
  if (!row.ok()) {
    std::cerr << "eval_grid_child: " << row.status().ToString() << "\n";
    return 3;
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  DumpCell(out, "baseline", row->baseline_accuracy, row->baseline_failed_runs,
           row->baseline_retries, row->baseline_error);
  for (const CellResult& cell : row->cells) {
    DumpCell(out, cell.technique, cell.accuracy, cell.failed_runs,
             cell.recovered_retries, cell.last_error);
  }
  out << "interrupted=" << (row->interrupted ? 1 : 0) << "\n";
  return out.good() ? 0 : 2;
}
