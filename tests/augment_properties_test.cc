// Property tests swept over EVERY augmenter in the taxonomy registry:
// whatever the branch, Generate() must honour the same contract — correct
// count, dataset-compatible shapes, finite values after imputation,
// determinism in the RNG seed, and respecting the requested class. These
// run with a reduced TimeGAN so the whole registry is covered.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "augment/pipeline.h"
#include "augment/timegan.h"
#include "data/synthetic.h"

namespace tsaug::augment {
namespace {

core::Dataset PropertyData() {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.train_counts = {10, 6, 4};
  spec.test_counts = {2, 2, 2};
  spec.num_channels = 2;
  spec.length = 24;
  spec.seed = 77;
  return data::MakeSynthetic(spec).train;
}

std::vector<TaxonomyEntry> PropertyTaxonomy() {
  std::vector<TaxonomyEntry> taxonomy = BuildTaxonomy(/*include_timegan=*/false);
  TimeGanConfig tiny;
  tiny.hidden_dim = 4;
  tiny.num_layers = 1;
  tiny.embedding_iterations = 8;
  tiny.supervised_iterations = 6;
  tiny.joint_iterations = 3;
  tiny.max_sequence_length = 10;
  taxonomy.push_back({std::make_shared<TimeGanAugmenter>(tiny),
                      TaxonomyBranch::kGenerativeNeural});
  return taxonomy;
}

struct NamedEntry {
  std::string name;
  std::shared_ptr<Augmenter> augmenter;
};

std::vector<NamedEntry> AllEntries() {
  std::vector<NamedEntry> entries;
  for (const TaxonomyEntry& entry : PropertyTaxonomy()) {
    entries.push_back({entry.augmenter->name(), entry.augmenter});
  }
  return entries;
}

class AugmenterProperty : public ::testing::TestWithParam<NamedEntry> {};

TEST_P(AugmenterProperty, GeneratesExactCount) {
  core::Dataset train = PropertyData();
  core::Rng rng(1);
  EXPECT_EQ(GetParam().augmenter->Generate(train, 1, 5, rng).size(), 5u);
  core::Rng rng2(2);
  EXPECT_EQ(GetParam().augmenter->Generate(train, 2, 0, rng2).size(), 0u);
}

TEST_P(AugmenterProperty, ShapesMatchDataset) {
  core::Dataset train = PropertyData();
  core::Rng rng(3);
  for (const core::TimeSeries& s :
       GetParam().augmenter->Generate(train, 0, 4, rng)) {
    EXPECT_EQ(s.num_channels(), 2);
    EXPECT_EQ(s.length(), 24);
  }
}

TEST_P(AugmenterProperty, ValuesFinite) {
  core::Dataset train = PropertyData();
  core::Rng rng(4);
  for (const core::TimeSeries& s :
       GetParam().augmenter->Generate(train, 2, 4, rng)) {
    for (double v : s.values()) {
      // NaN only allowed where sources carry missing values (none here).
      EXPECT_TRUE(std::isfinite(v)) << GetParam().name;
    }
  }
}

TEST_P(AugmenterProperty, DeterministicInSeed) {
  core::Dataset train = PropertyData();
  GetParam().augmenter->Invalidate();
  core::Rng rng_a(9);
  const auto a = GetParam().augmenter->Generate(train, 1, 3, rng_a);
  GetParam().augmenter->Invalidate();
  core::Rng rng_b(9);
  const auto b = GetParam().augmenter->Generate(train, 1, 3, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << GetParam().name;
}

TEST_P(AugmenterProperty, BalancingEqualizesCounts) {
  core::Dataset train = PropertyData();
  GetParam().augmenter->Invalidate();
  core::Rng rng(11);
  const core::Dataset balanced =
      BalanceWithAugmenter(train, *GetParam().augmenter, rng);
  const std::vector<int> counts = balanced.ClassCounts();
  for (int c : counts) EXPECT_EQ(c, 10) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, AugmenterProperty, ::testing::ValuesIn(AllEntries()),
    [](const ::testing::TestParamInfo<NamedEntry>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tsaug::augment
