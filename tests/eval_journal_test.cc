// Robustness tests for the cell journal (eval/journal.h): bitwise score
// round-trips (including NaN payloads from failed cells), torn/corrupt
// trailing lines dropped with a warning, duplicate records resolving to
// the last writer, and fingerprint mismatches rejected with a clear
// Status instead of silently mixing experiments.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/status.h"
#include "eval/journal.h"

namespace tsaug::eval {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::uint64_t Bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

JournalCell MakeCell(const std::string& dataset, int run, int cell,
                     const std::string& name, double score, int retries = 0,
                     core::Status status = core::OkStatus()) {
  JournalCell record;
  record.dataset = dataset;
  record.run = run;
  record.cell = cell;
  record.name = name;
  record.score = score;
  record.retries = retries;
  record.status = std::move(status);
  return record;
}

TEST(Crc32, MatchesTheIeeeCheckVector) {
  // The canonical CRC-32 test vector ("check" value in every table).
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(Journal, RoundTripsCellsBitwiseIncludingNanScores) {
  const std::string path = TempPath("journal_roundtrip.jsonl");
  std::filesystem::remove(path);

  const double exact = 0.8571428571428571;  // not representable in short text
  const double nan_score = std::nan("");
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, "fp=roundtrip").ok());
    EXPECT_EQ(journal.loaded_cells(), 0);
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 0, "baseline", exact)).ok());
    ASSERT_TRUE(journal
                    .Append(MakeCell(
                        "toy", 0, 1, "smote", nan_score, 2,
                        core::DivergedError("trainer: loss diverged")))
                    .ok());
    // Cells appended by this process are computed, not resumed: invisible.
    EXPECT_EQ(journal.Find("toy", 0, 0), nullptr);
  }

  Journal resumed;
  ASSERT_TRUE(resumed.Open(path, "fp=roundtrip").ok());
  EXPECT_EQ(resumed.loaded_cells(), 2);
  EXPECT_EQ(resumed.dropped_lines(), 0);

  const JournalCell* baseline = resumed.Find("toy", 0, 0);
  ASSERT_NE(baseline, nullptr);
  EXPECT_EQ(baseline->name, "baseline");
  EXPECT_EQ(Bits(baseline->score), Bits(exact));  // bit-identical, not just ==
  EXPECT_TRUE(baseline->status.ok());

  const JournalCell* failed = resumed.Find("toy", 0, 1);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(Bits(failed->score), Bits(nan_score));
  EXPECT_EQ(failed->retries, 2);
  EXPECT_EQ(failed->status.code(), core::StatusCode::kDiverged);
  EXPECT_EQ(failed->status.context(), "trainer: loss diverged");

  EXPECT_EQ(resumed.Find("toy", 1, 0), nullptr);  // never written
}

TEST(Journal, TruncatedTrailingLineIsDroppedAndEarlierCellsSurvive) {
  const std::string path = TempPath("journal_torn.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, "fp=torn").ok());
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 0, "baseline", 0.5)).ok());
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 1, "smote", 0.75)).ok());
  }
  // Tear the last line mid-record, as a kill during fwrite would.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 10);

  Journal resumed;
  ASSERT_TRUE(resumed.Open(path, "fp=torn").ok());
  EXPECT_EQ(resumed.dropped_lines(), 1);
  EXPECT_EQ(resumed.loaded_cells(), 1);
  ASSERT_NE(resumed.Find("toy", 0, 0), nullptr);
  EXPECT_EQ(resumed.Find("toy", 0, 1), nullptr);  // torn cell re-runs
}

TEST(Journal, CorruptBodyByteFailsTheCrcAndDropsOnlyThatLine) {
  const std::string path = TempPath("journal_corrupt.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, "fp=corrupt").ok());
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 0, "baseline", 0.5)).ok());
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 1, "smote", 0.75)).ok());
  }
  // Flip one digit inside the last record's body ("smote" -> "smoze"):
  // the recorded CRC no longer matches, so the whole line must go.
  std::string content = ReadAll(path);
  const size_t pos = content.rfind("smote");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 3] = 'z';
  WriteAll(path, content);

  Journal resumed;
  ASSERT_TRUE(resumed.Open(path, "fp=corrupt").ok());
  EXPECT_EQ(resumed.dropped_lines(), 1);
  EXPECT_EQ(resumed.loaded_cells(), 1);
  ASSERT_NE(resumed.Find("toy", 0, 0), nullptr);
  EXPECT_EQ(resumed.Find("toy", 0, 1), nullptr);
}

TEST(Journal, DuplicateCellRecordsTakeTheLastWriter) {
  const std::string path = TempPath("journal_dup.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, "fp=dup").ok());
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 0, "baseline", 0.25)).ok());
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 0, "baseline", 0.875)).ok());
  }
  Journal resumed;
  ASSERT_TRUE(resumed.Open(path, "fp=dup").ok());
  EXPECT_EQ(resumed.loaded_cells(), 1);  // keyed by (dataset, run, cell)
  const JournalCell* cell = resumed.Find("toy", 0, 0);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->score, 0.875);
}

TEST(Journal, FingerprintMismatchIsRejectedWithAClearStatus) {
  const std::string path = TempPath("journal_fingerprint.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, "model=rocket;seed=5").ok());
    ASSERT_TRUE(journal.Append(MakeCell("toy", 0, 0, "baseline", 0.5)).ok());
  }
  Journal mismatched;
  const core::Status status = mismatched.Open(path, "model=rocket;seed=6");
  EXPECT_EQ(status.code(), core::StatusCode::kDegenerateInput);
  EXPECT_NE(status.context().find("fingerprint mismatch"), std::string::npos);
  EXPECT_NE(status.context().find("model=rocket;seed=5"), std::string::npos);
  EXPECT_NE(status.context().find("model=rocket;seed=6"), std::string::npos);
  EXPECT_FALSE(mismatched.is_open());

  // The matching fingerprint still opens the same file fine.
  Journal matching;
  ASSERT_TRUE(matching.Open(path, "model=rocket;seed=5").ok());
  EXPECT_EQ(matching.loaded_cells(), 1);
}

TEST(Journal, StatusContextWithNewlinesCannotTearTheLineFormat) {
  const std::string path = TempPath("journal_escape.jsonl");
  std::filesystem::remove(path);
  const std::string hostile = "line one\nline two\t\"quoted\\slash\"";
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, "fp=escape").ok());
    ASSERT_TRUE(journal
                    .Append(MakeCell("toy", 0, 0, "baseline", 0.5, 1,
                                     core::SingularError(hostile)))
                    .ok());
  }
  Journal resumed;
  ASSERT_TRUE(resumed.Open(path, "fp=escape").ok());
  EXPECT_EQ(resumed.dropped_lines(), 0);
  const JournalCell* cell = resumed.Find("toy", 0, 0);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->status.code(), core::StatusCode::kSingular);
  EXPECT_EQ(cell->status.context(), hostile);
}

}  // namespace
}  // namespace tsaug::eval
