#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace tsaug::core {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(GetNumThreads()) {}
  ~ThreadCountGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

// Must run before anything calls SetNumThreads: checks that the pool's
// initial size honours TSAUG_NUM_THREADS when the harness sets it (ctest
// registers a second run of this binary with TSAUG_NUM_THREADS=5).
TEST(ParallelConfig, InitialThreadCountHonorsEnv) {
  const char* env = std::getenv("TSAUG_NUM_THREADS");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "TSAUG_NUM_THREADS not set";
  }
  EXPECT_EQ(GetNumThreads(), ParseNumThreads(env, /*fallback=*/1));
}

TEST(ParallelFor, CoversRangeExactlyOnceSerial) {
  ThreadCountGuard guard;
  SetNumThreads(1);
  std::vector<int> hits(1000, 0);
  ParallelFor(0, 1000, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelFor, CoversRangeExactlyOnceParallel) {
  ThreadCountGuard guard;
  for (int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    std::vector<std::atomic<int>> hits(977);  // prime length, uneven chunks
    for (auto& h : hits) h = 0;
    ParallelFor(0, 977, 3, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ChunksAreDisjointAndRespectGrain) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  constexpr std::int64_t kGrain = 10;
  ParallelFor(5, 505, kGrain, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::int64_t covered = 5;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, covered);  // contiguous, no overlap, no gap
    EXPECT_LT(lo, hi);
    // Every chunk except the last carries at least `grain` indices.
    if (hi != 505) {
      EXPECT_GE(hi - lo, kGrain);
    }
    covered = hi;
  }
  EXPECT_EQ(covered, 505);
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoOps) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(3, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  ParallelFor(10, 2, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsInlineAsSingleChunk) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  int calls = 0;
  ParallelFor(0, 5, 16, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 5);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  EXPECT_FALSE(InParallelRegion());
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_TRUE(InParallelRegion());
    for (std::int64_t i = lo; i < hi; ++i) {
      int inner_calls = 0;
      ParallelFor(0, 8, 1, [&](std::int64_t ilo, std::int64_t ihi) {
        ++inner_calls;
        EXPECT_TRUE(InParallelRegion());
        for (std::int64_t j = ilo; j < ihi; ++j) {
          hits[static_cast<size_t>(i * 8 + j)].fetch_add(1, std::memory_order_relaxed);
        }
      });
      EXPECT_EQ(inner_calls, 1);  // nested => one inline chunk
    }
  });
  EXPECT_FALSE(InParallelRegion());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [&](std::int64_t lo, std::int64_t hi) {
                      // Exactly the chunk holding index 40 throws, so the
                      // test works for any chunking (including inline).
                      if (lo <= 40 && 40 < hi) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> sum{0};
    ParallelFor(0, 10, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
      }
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ParallelFor, PerIndexOutputsIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  auto compute = [](int threads) {
    SetNumThreads(threads);
    std::vector<double> out(512);
    ParallelFor(0, 512, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        double acc = 0.0;
        for (int k = 0; k < 100; ++k) acc += 1.0 / (1.0 + static_cast<double>(i) + k);
        out[static_cast<size_t>(i)] = acc;
      }
    });
    return out;
  };
  const std::vector<double> serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(8));
}

TEST(SetNumThreads, ClampsAndRoundTrips) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  EXPECT_EQ(GetNumThreads(), 4);
  SetNumThreads(0);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(-3);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(kMaxThreads + 100);
  EXPECT_EQ(GetNumThreads(), kMaxThreads);
}

TEST(ParseNumThreads, EnvVarGrammar) {
  EXPECT_EQ(ParseNumThreads(nullptr, 3), 3);
  EXPECT_EQ(ParseNumThreads("", 3), 3);
  EXPECT_EQ(ParseNumThreads("4", 3), 4);
  EXPECT_EQ(ParseNumThreads("1", 3), 1);
  EXPECT_EQ(ParseNumThreads("0", 3), 3);    // non-positive -> fallback
  EXPECT_EQ(ParseNumThreads("-2", 3), 3);
  EXPECT_EQ(ParseNumThreads("abc", 3), 3);
  EXPECT_EQ(ParseNumThreads("4x", 3), 3);   // trailing junk -> fallback
  EXPECT_EQ(ParseNumThreads("99999", 3), kMaxThreads);
  EXPECT_EQ(ParseNumThreads("8", 0), 8);    // fallback itself is clamped
  EXPECT_EQ(ParseNumThreads("bad", 0), 1);
}

}  // namespace
}  // namespace tsaug::core
