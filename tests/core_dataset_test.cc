#include "core/dataset.h"

#include <gtest/gtest.h>

namespace tsaug::core {
namespace {

TimeSeries Series(double value) {
  return TimeSeries::FromChannels({{value, value + 1, value + 2}});
}

Dataset MakeImbalanced() {
  Dataset data;
  for (int i = 0; i < 6; ++i) data.Add(Series(i), 0);
  for (int i = 0; i < 2; ++i) data.Add(Series(10 + i), 1);
  for (int i = 0; i < 4; ++i) data.Add(Series(20 + i), 2);
  return data;
}

TEST(Dataset, AddTracksClasses) {
  Dataset data = MakeImbalanced();
  EXPECT_EQ(data.size(), 12);
  EXPECT_EQ(data.num_classes(), 3);
  EXPECT_EQ(data.ClassCounts(), (std::vector<int>{6, 2, 4}));
}

TEST(Dataset, MajorityAndMinority) {
  Dataset data = MakeImbalanced();
  EXPECT_EQ(data.MajorityClass(), 0);
  EXPECT_EQ(data.MinorityClass(), 1);
}

TEST(Dataset, IndicesByClassPartition) {
  Dataset data = MakeImbalanced();
  const auto by_class = data.IndicesByClass();
  ASSERT_EQ(by_class.size(), 3u);
  int total = 0;
  for (const auto& members : by_class) total += static_cast<int>(members.size());
  EXPECT_EQ(total, data.size());
  for (int i : by_class[1]) EXPECT_EQ(data.label(i), 1);
}

TEST(Dataset, FilterClassKeepsLabelSpace) {
  Dataset data = MakeImbalanced();
  Dataset only_two = data.FilterClass(2);
  EXPECT_EQ(only_two.size(), 4);
  EXPECT_EQ(only_two.num_classes(), 3);  // label space preserved
  for (int i = 0; i < only_two.size(); ++i) EXPECT_EQ(only_two.label(i), 2);
}

TEST(Dataset, SubsetPreservesOrder) {
  Dataset data = MakeImbalanced();
  Dataset subset = data.Subset({3, 0, 7});
  ASSERT_EQ(subset.size(), 3);
  EXPECT_EQ(subset.series(0), data.series(3));
  EXPECT_EQ(subset.series(1), data.series(0));
  EXPECT_EQ(subset.label(2), data.label(7));
}

TEST(Dataset, StratifiedSplitKeepsProportions) {
  Dataset data;
  for (int i = 0; i < 30; ++i) data.Add(Series(i), 0);
  for (int i = 0; i < 12; ++i) data.Add(Series(100 + i), 1);
  Rng rng(7);
  const auto [train, val] = data.StratifiedSplit(2.0 / 3.0, rng);
  EXPECT_EQ(train.size() + val.size(), data.size());
  EXPECT_EQ(train.ClassCounts()[0], 20);
  EXPECT_EQ(train.ClassCounts()[1], 8);
  EXPECT_EQ(val.ClassCounts()[0], 10);
  EXPECT_EQ(val.ClassCounts()[1], 4);
}

TEST(Dataset, StratifiedSplitNeverEmptiesSmallClass) {
  Dataset data;
  data.Add(Series(0), 0);
  data.Add(Series(1), 0);
  data.Add(Series(2), 1);
  data.Add(Series(3), 1);
  Rng rng(3);
  const auto [big, small] = data.StratifiedSplit(0.99, rng);
  EXPECT_EQ(small.ClassCounts()[0], 1);
  EXPECT_EQ(small.ClassCounts()[1], 1);
}

TEST(Dataset, ShuffledIsPermutation) {
  Dataset data = MakeImbalanced();
  Rng rng(11);
  Dataset shuffled = data.Shuffled(rng);
  EXPECT_EQ(shuffled.size(), data.size());
  EXPECT_EQ(shuffled.ClassCounts(), data.ClassCounts());
}

TEST(Dataset, VariableLengthHelpers) {
  Dataset data;
  data.Add(TimeSeries(2, 5), 0);
  data.Add(TimeSeries(2, 9), 0);
  EXPECT_EQ(data.max_length(), 9);
  EXPECT_EQ(data.min_length(), 5);
  EXPECT_FALSE(data.IsRectangular());
  EXPECT_EQ(data.num_channels(), 2);
}

TEST(Dataset, AppendMergesInstances) {
  Dataset a = MakeImbalanced();
  Dataset b;
  b.Add(Series(99), 1);
  a.Append(b);
  EXPECT_EQ(a.size(), 13);
  EXPECT_EQ(a.ClassCounts()[1], 3);
}

}  // namespace
}  // namespace tsaug::core
