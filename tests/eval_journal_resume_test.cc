// Kill/resume durability of the journaled grid, tested with real child
// processes (tests/eval_grid_child.cc, path in TSAUG_GRID_CHILD_BIN):
//   - a journaled straight run equals an unjournaled run;
//   - a run killed mid-grid by the journal.flush abort action and then
//     resumed against the same journal reproduces the uninterrupted
//     dump byte for byte, at 1, 2 and 8 threads;
//   - a graceful injected stop exits cleanly with the row marked
//     interrupted, and resuming completes to the identical dump.
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace tsaug::eval {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

const char* ChildBinary() { return std::getenv("TSAUG_GRID_CHILD_BIN"); }

/// Runs the child grid binary with the given journal ("" = none), dump
/// path, thread count and TSAUG_FAULTS spec. Returns the raw wait status
/// from std::system (0 = clean exit).
int RunChild(const std::string& journal, const std::string& out, int threads,
             const std::string& faults = "") {
  std::string command;
  command += "TSAUG_CHILD_OUT='" + out + "' ";
  command += "TSAUG_CHILD_JOURNAL='" + journal + "' ";
  command += "TSAUG_NUM_THREADS=" + std::to_string(threads) + " ";
  command += "TSAUG_FAULTS='" + faults + "' ";
  // Sequential appends: GCC 12 -O2 fires a bogus -Wrestrict on the
  // char*-plus-rvalue-string overload, fatal under the strict CI leg.
  command += "'";
  command += ChildBinary();
  command += "'";
  return std::system(command.c_str());
}

bool ExitedCleanly(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(JournalResume, StraightJournaledRunMatchesUnjournaledRun) {
  if (ChildBinary() == nullptr) GTEST_SKIP() << "TSAUG_GRID_CHILD_BIN unset";
  const std::string journal = TempPath("resume_straight.jsonl");
  const std::string plain_out = TempPath("resume_straight_plain.txt");
  const std::string journaled_out = TempPath("resume_straight_journaled.txt");
  std::filesystem::remove(journal);

  ASSERT_TRUE(ExitedCleanly(RunChild("", plain_out, 2)));
  ASSERT_TRUE(ExitedCleanly(RunChild(journal, journaled_out, 2)));
  const std::string plain = ReadAll(plain_out);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, ReadAll(journaled_out));
  EXPECT_GT(std::filesystem::file_size(journal), 0u);
}

TEST(JournalResume, KillAndResumeIsByteIdenticalAtOneTwoAndEightThreads) {
  if (ChildBinary() == nullptr) GTEST_SKIP() << "TSAUG_GRID_CHILD_BIN unset";
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string tag = std::to_string(threads);
    const std::string journal = TempPath("resume_kill_" + tag + ".jsonl");
    const std::string straight_out = TempPath("resume_kill_ref_" + tag);
    const std::string killed_out = TempPath("resume_kill_dead_" + tag);
    const std::string resumed_out = TempPath("resume_kill_back_" + tag);
    std::filesystem::remove(journal);

    // Reference: the uninterrupted run (no journal involved).
    ASSERT_TRUE(ExitedCleanly(RunChild("", straight_out, threads)));

    // Kill: the 4th journal append aborts the process, so run 0's three
    // cells are flushed and the grid dies mid run 1.
    const int killed =
        RunChild(journal, killed_out, threads, "journal.flush:4!");
    EXPECT_FALSE(ExitedCleanly(killed));
    EXPECT_FALSE(std::filesystem::exists(killed_out));  // died before dump
    ASSERT_GT(std::filesystem::file_size(journal), 0u);

    // Resume: completed cells come from the journal, the rest recompute;
    // the dump must equal the uninterrupted run byte for byte.
    ASSERT_TRUE(ExitedCleanly(RunChild(journal, resumed_out, threads)));
    const std::string straight = ReadAll(straight_out);
    ASSERT_FALSE(straight.empty());
    EXPECT_EQ(straight, ReadAll(resumed_out));
  }
}

TEST(JournalResume, GracefulStopJournalsCompletedRunsAndResumesIdentically) {
  if (ChildBinary() == nullptr) GTEST_SKIP() << "TSAUG_GRID_CHILD_BIN unset";
  const std::string journal = TempPath("resume_stop.jsonl");
  const std::string straight_out = TempPath("resume_stop_ref.txt");
  const std::string stopped_out = TempPath("resume_stop_cut.txt");
  const std::string resumed_out = TempPath("resume_stop_back.txt");
  std::filesystem::remove(journal);

  ASSERT_TRUE(ExitedCleanly(RunChild("", straight_out, 2)));

  // An injected stop at the run-1 boundary models SIGINT between runs:
  // the child exits cleanly with run 0 journaled and the row marked
  // interrupted (dumps still differ from the straight run — only one run
  // entered the means).
  ASSERT_TRUE(ExitedCleanly(
      RunChild(journal, stopped_out, 2, "cancel.stop@grid/toy/run1:1")));
  const std::string stopped = ReadAll(stopped_out);
  EXPECT_NE(stopped.find("interrupted=1"), std::string::npos);
  EXPECT_NE(stopped, ReadAll(straight_out));

  ASSERT_TRUE(ExitedCleanly(RunChild(journal, resumed_out, 2)));
  const std::string resumed = ReadAll(resumed_out);
  EXPECT_NE(resumed.find("interrupted=0"), std::string::npos);
  EXPECT_EQ(resumed, ReadAll(straight_out));
}

}  // namespace
}  // namespace tsaug::eval
