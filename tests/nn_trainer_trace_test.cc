// Observability of the training loop: TrainResult wall-time fields, the
// trace counters/scopes the trainer emits, state restoration around
// FindLearningRate, and the early-stopping patience path.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trace.h"
#include "nn/trainer.h"

namespace tsaug::nn {
namespace {

namespace trace = core::trace;

/// Restores the tracing toggle a test flipped.
class TraceToggleGuard {
 public:
  TraceToggleGuard() : saved_(trace::Enabled()) {}
  ~TraceToggleGuard() {
    if (saved_) {
      trace::Enable();
    } else {
      trace::Disable();
    }
  }

 private:
  bool saved_;
};

const trace::ScopeStats* FindScope(const std::vector<trace::ScopeStats>& list,
                                   const std::string& name) {
  for (const trace::ScopeStats& s : list) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Minimal logistic-regression-style net over [n, 1, T]: GAP + Linear.
class TinyNet : public SequenceClassifierNet {
 public:
  TinyNet(int channels, int classes, core::Rng& rng)
      : linear_(channels, classes, rng), classes_(classes) {}

  Variable Forward(const Variable& batch) override {
    return linear_.Forward(GlobalAvgPool(batch));
  }
  int num_classes() const override { return classes_; }
  std::vector<Module*> Children() override { return {&linear_}; }

 private:
  Linear linear_;
  int classes_;
};

// Class k has channel mean ~= 2k.
void MakeData(int n, Tensor* x, std::vector<int>* y, std::uint64_t seed) {
  core::Rng rng(seed);
  *x = Tensor({n, 1, 8});
  y->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    (*y)[static_cast<size_t>(i)] = label;
    for (int t = 0; t < 8; ++t) {
      x->at(i, 0, t) = 2.0 * label + rng.Normal(0, 0.3);
    }
  }
}

TEST(TrainResultTiming, EpochSecondsPopulatedWithoutTracing) {
  TraceToggleGuard guard;
  trace::Disable();  // TrainResult timings are independent of the toggle
  Tensor x_train;
  std::vector<int> y_train;
  MakeData(24, &x_train, &y_train, 1);
  Tensor x_val;
  std::vector<int> y_val;
  MakeData(8, &x_val, &y_val, 2);

  core::Rng rng(3);
  TinyNet net(1, 2, rng);
  TrainerConfig config;
  config.max_epochs = 10;
  config.early_stopping_patience = 10;
  config.learning_rate = 0.05;
  config.batch_size = 8;
  const TrainResult result =
      TrainClassifier(net, x_train, y_train, x_val, y_val, config, rng);

  ASSERT_GT(result.epochs_run, 0);
  EXPECT_EQ(static_cast<int>(result.epoch_seconds.size()), result.epochs_run);
  for (double seconds : result.epoch_seconds) EXPECT_GE(seconds, 0.0);
  // A fixed learning rate means no range test ran.
  EXPECT_DOUBLE_EQ(result.lr_search_seconds, 0.0);
}

TEST(TrainResultTiming, LrSearchTimedWhenRangeTestRuns) {
  TraceToggleGuard guard;
  trace::Disable();
  Tensor x_train;
  std::vector<int> y_train;
  MakeData(24, &x_train, &y_train, 4);
  Tensor x_val;
  std::vector<int> y_val;
  MakeData(8, &x_val, &y_val, 5);

  core::Rng rng(6);
  TinyNet net(1, 2, rng);
  TrainerConfig config;
  config.max_epochs = 3;
  config.early_stopping_patience = 3;
  config.learning_rate = 0.0;  // triggers FindLearningRate
  config.batch_size = 8;
  const TrainResult result =
      TrainClassifier(net, x_train, y_train, x_val, y_val, config, rng);

  EXPECT_GT(result.learning_rate, 0.0);
  EXPECT_GE(result.lr_search_seconds, 0.0);
  EXPECT_EQ(static_cast<int>(result.epoch_seconds.size()), result.epochs_run);
}

TEST(TrainerTracing, EmitsEpochScopesAndCounters) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  Tensor x_train;
  std::vector<int> y_train;
  MakeData(24, &x_train, &y_train, 7);
  Tensor x_val;
  std::vector<int> y_val;
  MakeData(8, &x_val, &y_val, 8);

  core::Rng rng(9);
  TinyNet net(1, 2, rng);
  TrainerConfig config;
  config.max_epochs = 5;
  config.early_stopping_patience = 5;
  config.learning_rate = 0.05;
  config.batch_size = 8;
  const TrainResult result =
      TrainClassifier(net, x_train, y_train, x_val, y_val, config, rng);

  EXPECT_EQ(trace::CounterValue("train.epochs"),
            static_cast<std::int64_t>(result.epochs_run));
  // 24 samples at batch size 8 = 3 batches per epoch.
  EXPECT_EQ(trace::CounterValue("train.batches"),
            static_cast<std::int64_t>(3 * result.epochs_run));
  EXPECT_EQ(trace::CounterValue("train.lr_range_tests"), 0);

  const std::vector<trace::ScopeStats> scopes = trace::MergedScopes();
  const trace::ScopeStats* classifier = FindScope(scopes, "train.classifier");
  ASSERT_NE(classifier, nullptr);
  EXPECT_EQ(classifier->count, 1);
  const trace::ScopeStats* epoch =
      FindScope(classifier->children, "train.epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->count, static_cast<std::int64_t>(result.epochs_run));
  EXPECT_GE(classifier->total_ns, epoch->total_ns);
}

TEST(TrainerTracing, FindLearningRateCountsStepsAndRestoresState) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  Tensor x;
  std::vector<int> y;
  MakeData(24, &x, &y, 10);

  core::Rng rng(11);
  TinyNet net(1, 2, rng);
  const std::vector<Tensor> before = net.GetState();
  core::Rng lr_rng(12);
  const double lr = FindLearningRate(net, x, y, /*batch_size=*/8, lr_rng);
  EXPECT_GT(lr, 0.0);

  // The range test restores the network it perturbed.
  const std::vector<Tensor> after = net.GetState();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(before[i] == after[i]) << "state tensor " << i << " differs";
  }

  EXPECT_EQ(trace::CounterValue("train.lr_range_tests"), 1);
  const std::int64_t steps = trace::CounterValue("train.lr_steps");
  EXPECT_GE(steps, 1);
  EXPECT_LE(steps, 40);  // the default sweep length; divergence may abort

  const std::vector<trace::ScopeStats> scopes = trace::MergedScopes();
  const trace::ScopeStats* find_lr = FindScope(scopes, "train.find_lr");
  ASSERT_NE(find_lr, nullptr);
  EXPECT_EQ(find_lr->count, 1);
  // The range test alone runs no training epochs.
  EXPECT_EQ(FindScope(scopes, "train.classifier"), nullptr);
  EXPECT_EQ(trace::CounterValue("train.epochs"), 0);
}

TEST(TrainerTracing, EarlyStoppingPatienceRestoresBestWeights) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  Tensor x_train;
  std::vector<int> y_train;
  MakeData(20, &x_train, &y_train, 13);
  // Validation labels are pure noise so accuracy cannot improve steadily
  // and the patience counter actually runs out.
  Tensor x_val;
  std::vector<int> y_val;
  MakeData(10, &x_val, &y_val, 14);
  core::Rng label_rng(15);
  for (int& label : y_val) label = label_rng.Int(0, 1);

  core::Rng rng(16);
  TinyNet net(1, 2, rng);
  TrainerConfig config;
  config.max_epochs = 200;
  config.early_stopping_patience = 4;
  config.learning_rate = 0.05;
  config.batch_size = 8;
  const TrainResult result =
      TrainClassifier(net, x_train, y_train, x_val, y_val, config, rng);

  EXPECT_LT(result.epochs_run, config.max_epochs);
  // One timing entry per epoch actually run, including the final epoch
  // that triggered the stop.
  EXPECT_EQ(static_cast<int>(result.epoch_seconds.size()), result.epochs_run);
  EXPECT_EQ(trace::CounterValue("train.epochs"),
            static_cast<std::int64_t>(result.epochs_run));
  // Best weights restored: re-evaluating reproduces the reported best.
  EXPECT_DOUBLE_EQ(EvaluateAccuracy(net, x_val, y_val),
                   result.best_val_accuracy);
}

}  // namespace
}  // namespace tsaug::nn
