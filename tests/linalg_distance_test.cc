#include "linalg/distance.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "linalg/knn.h"

namespace tsaug::linalg {
namespace {

using core::TimeSeries;

TEST(EuclideanDistance, Vectors) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(EuclideanDistance, MultivariateSeries) {
  TimeSeries a = TimeSeries::FromChannels({{0, 0}, {0, 0}});
  TimeSeries b = TimeSeries::FromChannels({{1, 1}, {1, 1}});
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 2.0);
}

TEST(EuclideanDistance, ResamplesDifferentLengths) {
  TimeSeries a = TimeSeries::FromValues({0, 1, 2, 3});
  TimeSeries b = TimeSeries::FromValues({0, 3});  // resampled -> {0,1,2,3}
  EXPECT_NEAR(EuclideanDistance(a, b), 0.0, 1e-12);
}

TEST(EuclideanDistance, NanCoordinatesAreSkipped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> a = {0.0, nan, 0.0};
  const std::vector<double> b = {3.0, 7.5, 4.0};
  // The NaN coordinate contributes nothing; the rest is a 3-4-5 triangle.
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(b, a), 5.0);
}

TEST(EuclideanDistance, AllNanIsZeroNotNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> a = {nan, nan};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 0.0);
}

TEST(EuclideanDistance, CleanPathBitsUnchangedByNanSupport) {
  // NaN-free inputs must keep the backend kernel's exact result — the
  // NaN-safe branch only fires when a NaN is actually present.
  const std::vector<double> a = {0.25, -1.5, 3.125, 0.0625};
  const std::vector<double> b = {1.25, 0.5, -0.875, 0.0625};
  double expected = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    expected += d * d;
  }
  EXPECT_EQ(EuclideanDistance(a, b), std::sqrt(expected));
}

TEST(KNearestNeighbors, NanPointsKeepOrderingValid) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // A NaN-poisoned distance would break partial_sort's strict weak
  // ordering (UB); with NaN-skipping distances every comparison is finite.
  std::vector<std::vector<double>> points = {
      {0, 0}, {1, nan}, {5, 5}, {nan, nan}};
  const auto nn = KNearestNeighbors(points, {0, 0}, 3, /*exclude=*/0);
  ASSERT_EQ(nn.size(), 3u);
  // {nan,nan} has distance 0 (every coordinate skipped), {1,nan} distance 1.
  EXPECT_EQ(nn[0], 3);
  EXPECT_EQ(nn[1], 1);
  EXPECT_EQ(nn[2], 2);
}

TEST(DtwDistance, NanStepsContributeNothing) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TimeSeries a = TimeSeries::FromValues({1, nan, 3, 2, 1});
  TimeSeries clean = TimeSeries::FromValues({1, 2, 3, 2, 1});
  const double d = DtwDistance(a, clean);
  EXPECT_TRUE(std::isfinite(d));
  // Identical except for the masked step, whose cost is dropped; DTW can
  // also warp around it, so the distance stays at zero.
  EXPECT_DOUBLE_EQ(d, 0.0);
  // Symmetric in which operand carries the NaN.
  EXPECT_DOUBLE_EQ(DtwDistance(clean, a), d);
}

TEST(DtwDistance, NanBandRowsMatchScalarReference) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TimeSeries a = TimeSeries::FromChannels({{0, nan, 2, 3}, {1, 1, nan, 1}});
  TimeSeries b = TimeSeries::FromChannels({{0, 1, 2, 4}, {1, 1, 1, 1}});
  const double d = DtwDistance(a, b);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GE(d, 0.0);
  // A fully-banded run must agree with the unconstrained one when the band
  // covers the whole matrix.
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, /*window=*/10), d);
}

TEST(DtwPath, NanSeriesStillYieldsMonotonePath) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TimeSeries a = TimeSeries::FromValues({0, nan, 2, 3});
  TimeSeries b = TimeSeries::FromValues({0, 1, 3});
  const auto path = DtwPath(a, b);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(path.back(), (std::pair<int, int>{3, 2}));
}

TEST(DtwDistance, EqualSeriesIsZero) {
  TimeSeries a = TimeSeries::FromValues({1, 2, 3, 2, 1});
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwDistance, AtMostEuclideanForEqualLength) {
  TimeSeries a = TimeSeries::FromValues({0, 1, 2, 3, 4});
  TimeSeries b = TimeSeries::FromValues({0, 2, 2, 2, 4});
  EXPECT_LE(DtwDistance(a, b), EuclideanDistance(a, b) + 1e-12);
}

TEST(DtwDistance, InvariantToSmallShift) {
  // A shifted bump is far in Euclidean terms but near-zero for DTW.
  std::vector<double> base(20, 0.0);
  std::vector<double> shifted(20, 0.0);
  for (int i = 5; i < 10; ++i) base[static_cast<size_t>(i)] = 1.0;
  for (int i = 7; i < 12; ++i) shifted[static_cast<size_t>(i)] = 1.0;
  TimeSeries a = TimeSeries::FromValues(base);
  TimeSeries b = TimeSeries::FromValues(shifted);
  EXPECT_LT(DtwDistance(a, b), 0.25 * EuclideanDistance(a, b));
}

TEST(DtwDistance, BandConstraintIncreasesCost) {
  std::vector<double> base(16, 0.0);
  std::vector<double> shifted(16, 0.0);
  for (int i = 2; i < 6; ++i) base[static_cast<size_t>(i)] = 1.0;
  for (int i = 8; i < 12; ++i) shifted[static_cast<size_t>(i)] = 1.0;
  TimeSeries a = TimeSeries::FromValues(base);
  TimeSeries b = TimeSeries::FromValues(shifted);
  EXPECT_LE(DtwDistance(a, b, /*window=*/-1), DtwDistance(a, b, /*window=*/1));
}

TEST(DtwPath, StartsAndEndsAtCorners) {
  TimeSeries a = TimeSeries::FromValues({0, 1, 2});
  TimeSeries b = TimeSeries::FromValues({0, 2});
  const auto path = DtwPath(a, b);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(path.back(), (std::pair<int, int>{2, 1}));
  // Monotone non-decreasing steps.
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(path[i].first, path[i - 1].first);
    EXPECT_GE(path[i].second, path[i - 1].second);
    EXPECT_LE(path[i].first - path[i - 1].first, 1);
    EXPECT_LE(path[i].second - path[i - 1].second, 1);
  }
}

TEST(KNearestNeighbors, FindsClosestPoints) {
  std::vector<std::vector<double>> points = {
      {0, 0}, {1, 0}, {5, 5}, {0.5, 0.1}};
  const auto nn = KNearestNeighbors(points, {0, 0}, 2, /*exclude=*/0);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0], 3);
  EXPECT_EQ(nn[1], 1);
}

TEST(KNearestNeighbors, KLargerThanPool) {
  std::vector<std::vector<double>> points = {{0}, {1}};
  const auto nn = KNearestNeighbors(points, {0}, 10, /*exclude=*/0);
  EXPECT_EQ(nn.size(), 1u);
}

TEST(PairwiseDistances, SymmetricZeroDiagonal) {
  std::vector<std::vector<double>> points = {{0, 0}, {3, 4}, {6, 8}};
  const auto d = PairwiseDistances(points);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 0], 0.0);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 1], 5.0);
  EXPECT_DOUBLE_EQ(d[1 * 3 + 0], 5.0);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 2], 10.0);
}

TEST(SharedNearestNeighborSimilarity, ClusterMembersShareNeighbors) {
  // Two tight clusters of 3; within-cluster SNN counts exceed cross-cluster.
  std::vector<std::vector<double>> points = {{0, 0},   {0.1, 0}, {0, 0.1},
                                             {10, 10}, {10.1, 10}, {10, 10.1}};
  const auto snn = SharedNearestNeighborSimilarity(points, 2);
  const int n = 6;
  EXPECT_GT(snn[0 * n + 1], snn[0 * n + 3]);
  EXPECT_EQ(snn[0 * n + 3], 0);
  EXPECT_EQ(snn[1 * n + 0], snn[0 * n + 1]);
}

}  // namespace
}  // namespace tsaug::linalg
