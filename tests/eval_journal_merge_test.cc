// Tests for MergeJournals (eval/journal.h), the shard-merge seam of the
// sharded grid supervisor: cross-file last-writer dedup, torn trailing
// lines dropped, fingerprint mismatches rejected, missing/empty inputs
// tolerated, and deterministic byte-identical output across re-merges.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.h"
#include "eval/journal.h"

namespace tsaug::eval {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::uint64_t Bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

JournalCell MakeCell(const std::string& dataset, int run, int cell,
                     const std::string& name, double score,
                     core::Status status = core::OkStatus()) {
  JournalCell record;
  record.dataset = dataset;
  record.run = run;
  record.cell = cell;
  record.name = name;
  record.score = score;
  record.status = std::move(status);
  return record;
}

// Writes a shard journal holding `cells` under `fingerprint`.
void WriteShard(const std::string& path, const std::string& fingerprint,
                const std::vector<JournalCell>& cells) {
  std::filesystem::remove(path);
  Journal journal;
  ASSERT_TRUE(journal.Open(path, fingerprint).ok());
  for (const JournalCell& cell : cells) {
    ASSERT_TRUE(journal.Append(cell).ok());
  }
}

TEST(MergeJournals, FoldsDisjointShardsIntoOneResumableJournal) {
  const std::string a = TempPath("merge_disjoint_a.jsonl");
  const std::string b = TempPath("merge_disjoint_b.jsonl");
  const std::string out = TempPath("merge_disjoint_out.jsonl");
  const double exact = 0.8571428571428571;
  WriteShard(a, "fp=merge", {MakeCell("toy", 0, 0, "baseline", exact),
                             MakeCell("zed", 1, 2, "jitter", 0.25)});
  WriteShard(b, "fp=merge", {MakeCell("toy", 0, 1, "smote", 0.75)});

  const auto stats = MergeJournals({a, b}, out, "fp=merge");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->inputs, 2);
  EXPECT_EQ(stats->missing_inputs, 0);
  EXPECT_EQ(stats->cells, 3);
  EXPECT_EQ(stats->duplicates, 0);
  EXPECT_EQ(stats->dropped_lines, 0);

  // The merged file is a normal journal: resuming against it restores all
  // three cells, bit-exact, under the same fingerprint.
  Journal merged;
  ASSERT_TRUE(merged.Open(out, "fp=merge").ok());
  EXPECT_EQ(merged.loaded_cells(), 3);
  const JournalCell* baseline = merged.Find("toy", 0, 0);
  ASSERT_NE(baseline, nullptr);
  EXPECT_EQ(Bits(baseline->score), Bits(exact));
  ASSERT_NE(merged.Find("toy", 0, 1), nullptr);
  ASSERT_NE(merged.Find("zed", 1, 2), nullptr);
}

TEST(MergeJournals, CrossFileDuplicatesTakeTheLastInputInOrder) {
  const std::string a = TempPath("merge_dup_a.jsonl");
  const std::string b = TempPath("merge_dup_b.jsonl");
  const std::string out = TempPath("merge_dup_out.jsonl");
  // The same cell appears in both shards (e.g. a retried worker re-ran a
  // cell a previous attempt already journaled elsewhere): the later input
  // wins, mirroring Open()'s later-line-wins rule within one file.
  WriteShard(a, "fp=dup", {MakeCell("toy", 0, 0, "baseline", 0.25)});
  WriteShard(b, "fp=dup", {MakeCell("toy", 0, 0, "baseline", 0.875)});

  const auto stats = MergeJournals({a, b}, out, "fp=dup");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cells, 1);
  EXPECT_EQ(stats->duplicates, 1);

  Journal merged;
  ASSERT_TRUE(merged.Open(out, "fp=dup").ok());
  const JournalCell* cell = merged.Find("toy", 0, 0);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->score, 0.875);
}

TEST(MergeJournals, TornTrailingLineIsDroppedAndCounted) {
  const std::string a = TempPath("merge_torn_a.jsonl");
  const std::string out = TempPath("merge_torn_out.jsonl");
  WriteShard(a, "fp=torn", {MakeCell("toy", 0, 0, "baseline", 0.5),
                            MakeCell("toy", 0, 1, "smote", 0.75)});
  // Tear the last record mid-line, as a SIGKILL during fwrite would: the
  // merge must keep the intact cell and count one dropped line.
  const auto size = std::filesystem::file_size(a);
  std::filesystem::resize_file(a, size - 10);

  const auto stats = MergeJournals({a}, out, "fp=torn");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cells, 1);
  EXPECT_EQ(stats->dropped_lines, 1);

  Journal merged;
  ASSERT_TRUE(merged.Open(out, "fp=torn").ok());
  ASSERT_NE(merged.Find("toy", 0, 0), nullptr);
  EXPECT_EQ(merged.Find("toy", 0, 1), nullptr);  // the torn cell re-runs
}

TEST(MergeJournals, FingerprintMismatchIsRejectedNotMixed) {
  const std::string a = TempPath("merge_fp_a.jsonl");
  const std::string b = TempPath("merge_fp_b.jsonl");
  const std::string out = TempPath("merge_fp_out.jsonl");
  WriteShard(a, "model=rocket;seed=5", {MakeCell("toy", 0, 0, "b", 0.5)});
  WriteShard(b, "model=rocket;seed=6", {MakeCell("toy", 0, 1, "s", 0.75)});

  const auto stats = MergeJournals({a, b}, out, "model=rocket;seed=5");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), core::StatusCode::kDegenerateInput);
  EXPECT_NE(stats.status().context().find("fingerprint mismatch"),
            std::string::npos);
}

TEST(MergeJournals, MissingAndEmptyInputsAreToleratedAndCounted) {
  const std::string a = TempPath("merge_gap_a.jsonl");
  const std::string absent = TempPath("merge_gap_never_created.jsonl");
  const std::string empty = TempPath("merge_gap_empty.jsonl");
  const std::string out = TempPath("merge_gap_out.jsonl");
  WriteShard(a, "fp=gap", {MakeCell("toy", 0, 0, "baseline", 0.5)});
  std::filesystem::remove(absent);
  // A zero-byte file: a shard that was spawned but killed before its
  // journal header flushed. Indistinguishable from never-started.
  std::filesystem::remove(empty);
  std::ofstream(empty, std::ios::binary).close();

  const auto stats = MergeJournals({a, absent, empty}, out, "fp=gap");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->inputs, 1);
  EXPECT_EQ(stats->missing_inputs, 2);
  EXPECT_EQ(stats->cells, 1);

  Journal merged;
  ASSERT_TRUE(merged.Open(out, "fp=gap").ok());
  EXPECT_EQ(merged.loaded_cells(), 1);
}

TEST(MergeJournals, OutputIsDeterministicAcrossInputOrderAndReMerge) {
  const std::string a = TempPath("merge_det_a.jsonl");
  const std::string b = TempPath("merge_det_b.jsonl");
  const std::string out1 = TempPath("merge_det_out1.jsonl");
  const std::string out2 = TempPath("merge_det_out2.jsonl");
  const std::string out3 = TempPath("merge_det_out3.jsonl");
  // Disjoint cells written in interleaved order: the merged file must sort
  // by (dataset, run, cell), so both input orders and a re-merge of the
  // merged file itself all produce byte-identical output.
  WriteShard(a, "fp=det", {MakeCell("zed", 1, 0, "baseline", 0.5),
                           MakeCell("toy", 0, 1, "smote", 0.75)});
  WriteShard(b, "fp=det", {MakeCell("toy", 0, 0, "baseline", 0.25)});

  ASSERT_TRUE(MergeJournals({a, b}, out1, "fp=det").ok());
  ASSERT_TRUE(MergeJournals({b, a}, out2, "fp=det").ok());
  ASSERT_TRUE(MergeJournals({out1}, out3, "fp=det").ok());
  const std::string merged = ReadAll(out1);
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged, ReadAll(out2));
  EXPECT_EQ(merged, ReadAll(out3));
}

TEST(MergeJournals, FailedCellStatusesSurviveTheMerge) {
  const std::string a = TempPath("merge_status_a.jsonl");
  const std::string out = TempPath("merge_status_out.jsonl");
  const double nan_score = std::nan("");
  WriteShard(a, "fp=status",
             {MakeCell("toy", 0, 1, "smote", nan_score,
                       core::UnavailableError(
                           "grid: cell missing from journal"))});

  ASSERT_TRUE(MergeJournals({a}, out, "fp=status").ok());
  Journal merged;
  ASSERT_TRUE(merged.Open(out, "fp=status").ok());
  const JournalCell* cell = merged.Find("toy", 0, 1);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(Bits(cell->score), Bits(nan_score));
  EXPECT_EQ(cell->status.code(), core::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace tsaug::eval
