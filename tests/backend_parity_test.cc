// Bitwise parity of the simd kernel backend against the scalar
// reference: every dispatched hot path must produce identical bits under
// both backends, at every thread count. The suite skips (rather than
// passes vacuously) on hosts without AVX2 — CI runs at least one leg on
// hardware where it executes.

#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "classify/rocket.h"
#include "core/kernels/kernels.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "linalg/distance.h"
#include "linalg/matrix.h"
#include "nn/autograd.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace tsaug {
namespace {

namespace kernels = core::kernels;

class BackendGuard {
 public:
  BackendGuard()
      : backend_(kernels::ActiveBackend()), threads_(core::GetNumThreads()) {}
  ~BackendGuard() {
    kernels::SetBackend(backend_);
    core::SetNumThreads(threads_);
  }

 private:
  kernels::Backend backend_;
  int threads_;
};

const std::vector<int> kThreadCounts = {1, 2, 8};

/// Runs `fn` under both backends at every thread count and requires the
/// flattened results to be bitwise identical (memcmp, not ==, so NaNs
/// and signed zeros cannot hide a divergence).
void ExpectBackendParity(const std::function<std::vector<double>()>& fn) {
  ASSERT_TRUE(kernels::SimdAvailable());
  for (int threads : kThreadCounts) {
    core::SetNumThreads(threads);
    kernels::SetBackend(kernels::Backend::kScalar);
    const std::vector<double> scalar = fn();
    kernels::SetBackend(kernels::Backend::kSimd);
    ASSERT_EQ(kernels::ActiveBackend(), kernels::Backend::kSimd);
    const std::vector<double> simd = fn();
    ASSERT_EQ(scalar.size(), simd.size());
    EXPECT_EQ(0, std::memcmp(scalar.data(), simd.data(),
                             scalar.size() * sizeof(double)))
        << "backend divergence at " << threads << " thread(s)";
  }
}

linalg::Matrix RandomMatrix(int rows, int cols, std::uint64_t seed,
                            double zero_fraction = 0.0) {
  core::Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) {
    v = rng.Bernoulli(zero_fraction) ? 0.0 : rng.Normal();
  }
  return m;
}

nn::Tensor RandomTensor(const std::vector<int>& shape, std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Tensor t(shape);
  for (double& v : t.data()) v = rng.Normal();
  return t;
}

void Append(std::vector<double>& out, const linalg::Matrix& m) {
  out.insert(out.end(), m.data().begin(), m.data().end());
}

void Append(std::vector<double>& out, const nn::Tensor& t) {
  out.insert(out.end(), t.data().begin(), t.data().end());
}

#define SKIP_WITHOUT_SIMD()                                           \
  if (!kernels::SimdAvailable()) {                                    \
    GTEST_SKIP() << "simd backend unavailable on this host";          \
  }                                                                   \
  BackendGuard guard

TEST(BackendParity, MatMulFamily) {
  SKIP_WITHOUT_SIMD();
  // Zeros in the left operand exercise the saxpy zero-skip path.
  const linalg::Matrix a = RandomMatrix(17, 9, 1, /*zero_fraction=*/0.3);
  const linalg::Matrix at = RandomMatrix(9, 17, 2, /*zero_fraction=*/0.3);
  const linalg::Matrix b = RandomMatrix(9, 13, 3);
  const linalg::Matrix bt = RandomMatrix(13, 9, 4);
  core::Rng rng(5);
  std::vector<double> x(9);
  for (double& v : x) v = rng.Normal();

  ExpectBackendParity([&] {
    std::vector<double> out;
    Append(out, linalg::MatMul(a, b));
    Append(out, linalg::MatMulTransposeA(at, b));
    Append(out, linalg::MatMulTransposeB(a, bt));
    const std::vector<double> y = linalg::MatVec(a, x);
    out.insert(out.end(), y.begin(), y.end());
    return out;
  });
}

TEST(BackendParity, RocketTransform) {
  SKIP_WITHOUT_SIMD();
  const nn::Tensor data = RandomTensor({3, 2, 40}, 6);
  classify::RocketTransform transform(/*num_kernels=*/50, /*seed=*/17);
  transform.Fit(/*num_channels=*/2, /*series_length=*/40);

  ExpectBackendParity([&] {
    std::vector<double> out;
    Append(out, transform.Transform(data));
    return out;
  });
}

TEST(BackendParity, NnMatMulForwardBackward) {
  SKIP_WITHOUT_SIMD();
  const nn::Tensor ta = RandomTensor({5, 4}, 7);
  const nn::Tensor tb = RandomTensor({4, 3}, 8);

  ExpectBackendParity([&] {
    nn::Variable a(ta, /*requires_grad=*/true);
    nn::Variable b(tb, /*requires_grad=*/true);
    nn::Variable loss = nn::Mean(nn::MatMul(a, b));
    loss.Backward();
    std::vector<double> out;
    Append(out, loss.value());
    Append(out, a.grad());
    Append(out, b.grad());
    return out;
  });
}

TEST(BackendParity, Conv1dSameForwardBackward) {
  SKIP_WITHOUT_SIMD();
  const nn::Tensor tx = RandomTensor({2, 3, 20}, 9);
  const nn::Tensor tw = RandomTensor({4, 3, 5}, 10);

  for (int dilation : {1, 2}) {
    ExpectBackendParity([&] {
      nn::Variable x(tx, /*requires_grad=*/true);
      nn::Variable w(tw, /*requires_grad=*/true);
      nn::Variable loss = nn::Mean(nn::Conv1dSame(x, w, dilation));
      loss.Backward();
      std::vector<double> out;
      Append(out, loss.value());
      Append(out, x.grad());
      Append(out, w.grad());
      return out;
    });
  }
}

TEST(BackendParity, Distances) {
  SKIP_WITHOUT_SIMD();
  core::Rng rng(11);
  core::TimeSeries a(3, 19);
  core::TimeSeries b(3, 23);  // unequal lengths exercise the resample path
  for (double& v : a.values()) v = rng.Normal();
  for (double& v : b.values()) v = rng.Normal();
  std::vector<double> u(37), v(37);
  for (double& e : u) e = rng.Normal();
  for (double& e : v) e = rng.Normal();

  ExpectBackendParity([&] {
    return std::vector<double>{
        linalg::EuclideanDistance(u, v),
        linalg::EuclideanDistance(a, b),
        linalg::DtwDistance(a, b, /*window=*/-1),
        linalg::DtwDistance(a, b, /*window=*/4),
    };
  });
}

TEST(BackendParity, ElementwiseChains) {
  SKIP_WITHOUT_SIMD();
  const nn::Tensor tx = RandomTensor({6, 7}, 12);
  const nn::Tensor ty = RandomTensor({6, 7}, 13);

  ExpectBackendParity([&] {
    nn::Variable x(tx, /*requires_grad=*/true);
    nn::Variable y(ty, /*requires_grad=*/true);
    nn::Variable r = nn::Mul(nn::Relu(x), nn::Tanh(y));
    nn::Variable s = nn::Sigmoid(nn::Sub(x, y));
    nn::Variable t = nn::OneMinus(nn::ScaleBy(nn::AddConst(r, 0.25), 0.5));
    nn::Variable loss = nn::Mean(nn::Add(nn::Add(r, s), t));
    loss.Backward();
    std::vector<double> out;
    Append(out, loss.value());
    Append(out, x.grad());
    Append(out, y.grad());
    return out;
  });
}

/// The fused gate op must match the unfused composition bitwise — in
/// values AND gradients — under both backends. This pins the GRU cell's
/// numerics to the pre-fusion graph.
TEST(BackendParity, FusedGateMatchesUnfusedComposition) {
  SKIP_WITHOUT_SIMD();
  const nn::Tensor ta = RandomTensor({6, 5}, 14);
  const nn::Tensor tb = RandomTensor({6, 5}, 15);
  const nn::Tensor tbias = RandomTensor({5}, 16);

  for (bool use_tanh : {false, true}) {
    auto run = [&](bool fused) {
      nn::Variable a(ta, /*requires_grad=*/true);
      nn::Variable b(tb, /*requires_grad=*/true);
      nn::Variable bias(tbias, /*requires_grad=*/true);
      nn::Variable gate;
      if (fused) {
        gate = use_tanh ? nn::AddRowBiasTanh(a, b, bias)
                        : nn::AddRowBiasSigmoid(a, b, bias);
      } else {
        nn::Variable pre = nn::AddRowBias(nn::Add(a, b), bias);
        gate = use_tanh ? nn::Tanh(pre) : nn::Sigmoid(pre);
      }
      nn::Variable loss = nn::Mean(gate);
      loss.Backward();
      std::vector<double> out;
      Append(out, gate.value());
      Append(out, a.grad());
      Append(out, b.grad());
      Append(out, bias.grad());
      return out;
    };
    // Fused == unfused within the active backend...
    for (kernels::Backend backend :
         {kernels::Backend::kScalar, kernels::Backend::kSimd}) {
      kernels::SetBackend(backend);
      const std::vector<double> fused = run(true);
      const std::vector<double> unfused = run(false);
      ASSERT_EQ(fused.size(), unfused.size());
      EXPECT_EQ(0, std::memcmp(fused.data(), unfused.data(),
                               fused.size() * sizeof(double)))
          << "fused/unfused divergence under "
          << kernels::BackendName(backend);
    }
    // ...and the fused op itself is backend-parity clean.
    ExpectBackendParity([&] { return run(true); });
  }
}

}  // namespace
}  // namespace tsaug
