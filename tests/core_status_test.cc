// Tests for the recoverable-error layer (core/status.h): Status codes and
// context chaining, StatusOr value/error duality, and the propagation
// macro. The aborting paths (value() on error) are covered by the
// TSAUG_CHECK death-test machinery elsewhere; here we exercise the
// contract recovery policies rely on.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.h"

namespace tsaug::core {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
  EXPECT_EQ(status, OkStatus());
}

TEST(Status, ErrorFactoriesCarryCodeAndContext) {
  EXPECT_EQ(SingularError("gram").code(), StatusCode::kSingular);
  EXPECT_EQ(DivergedError("loss").code(), StatusCode::kDiverged);
  EXPECT_EQ(DegenerateInputError("empty").code(),
            StatusCode::kDegenerateInput);
  EXPECT_EQ(InjectedFaultError("test").code(), StatusCode::kInjectedFault);
  EXPECT_EQ(InvalidArgumentError("frame").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(UnavailableError("overload").code(), StatusCode::kUnavailable);
  EXPECT_FALSE(SingularError("gram").ok());
  EXPECT_EQ(SingularError("gram").context(), "gram");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kSingular), "singular");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDiverged), "diverged");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDegenerateInput),
               "degenerate_input");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInjectedFault), "injected_fault");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
}

TEST(Status, AddContextPrependsFrames) {
  Status status = SingularError("matrix not SPD");
  status.AddContext("ridge.solve(primal)");
  status.AddContext("ridge.fit");
  EXPECT_EQ(status.context(),
            "ridge.fit: ridge.solve(primal): matrix not SPD");
  EXPECT_EQ(status.ToString(),
            "singular: ridge.fit: ridge.solve(primal): matrix not SPD");
  // The code survives context chaining.
  EXPECT_EQ(status.code(), StatusCode::kSingular);
}

TEST(Status, AddContextReturnsSelfForReturnChaining) {
  Status status = DivergedError("nan loss");
  const Status& chained = status.AddContext("trainer");
  EXPECT_EQ(&chained, &status);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> x = 42;
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x.value(), 42);
  EXPECT_EQ(*x, 42);
  EXPECT_TRUE(x.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> x = SingularError("no solve");
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kSingular);
  EXPECT_EQ(x.status().context(), "no solve");
}

TEST(StatusOr, MovesValueOut) {
  StatusOr<std::vector<int>> x = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(x.ok());
  const std::vector<int> moved = std::move(x).value();
  EXPECT_EQ(moved, (std::vector<int>{1, 2, 3}));
}

TEST(StatusOr, ArrowOperatorReachesMembers) {
  StatusOr<std::string> x = std::string("abc");
  EXPECT_EQ(x->size(), 3u);
}

StatusOr<int> HalveEven(int n) {
  if (n % 2 != 0) return DegenerateInputError("odd input");
  return n / 2;
}

Status Pipeline(int n, int* out) {
  StatusOr<int> halved = HalveEven(n);
  if (!halved.ok()) {
    Status status = halved.status();
    return status.AddContext("pipeline");
  }
  *out = halved.value();
  return OkStatus();
}

TEST(StatusOr, PropagationIdiom) {
  int out = 0;
  EXPECT_TRUE(Pipeline(8, &out).ok());
  EXPECT_EQ(out, 4);
  const Status failed = Pipeline(7, &out);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kDegenerateInput);
  EXPECT_EQ(failed.context(), "pipeline: odd input");
}

Status ReturnIfErrorUser(const Status& status, bool* reached_end) {
  TSAUG_RETURN_IF_ERROR(status);
  *reached_end = true;
  return OkStatus();
}

TEST(Status, ReturnIfErrorMacro) {
  bool reached_end = false;
  const Status failed =
      ReturnIfErrorUser(DivergedError("boom"), &reached_end);
  EXPECT_FALSE(reached_end);
  EXPECT_EQ(failed.code(), StatusCode::kDiverged);

  EXPECT_TRUE(ReturnIfErrorUser(OkStatus(), &reached_end).ok());
  EXPECT_TRUE(reached_end);
}

}  // namespace
}  // namespace tsaug::core
