#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tsaug::core {
namespace {

TEST(Rng, DeterministicInSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_EQ(a.Int(0, 1000), b.Int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    equal += a.Int(0, 1 << 20) == b.Int(0, 1 << 20) ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(4);
  double mean = 0.0;
  double var = 0.0;
  const int n = 20000;
  std::vector<double> draws(n);
  for (double& v : draws) {
    v = rng.Normal(3.0, 2.0);
    mean += v / n;
  }
  for (double v : draws) var += (v - mean) * (v - mean) / n;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, IntInclusiveBothEnds) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Int(0, 3));
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2, 3}));
  EXPECT_EQ(rng.Int(7, 7), 7);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, SampleWithoutReplacementUnique) {
  Rng rng(8);
  const std::vector<int> sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(9);
  std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(Rng, ChoiceReturnsMembers) {
  Rng rng(10);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 30; ++i) {
    const int v = rng.Choice(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(11);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    equal += parent.Int(0, 1 << 20) == child.Int(0, 1 << 20) ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace tsaug::core
