// Tests for the deterministic fault-injection registry
// (core/faultpoint.h): spec parsing, Nth-hit semantics, per-domain hit
// counting and the disabled-by-default zero-cost path. Each test installs
// its spec via SetSpec (which resets all counters) and clears it on exit
// so tests stay order-independent.
#include <string>

#include <gtest/gtest.h>

#include "core/faultpoint.h"
#include "core/status.h"

namespace tsaug::core::fault {
namespace {

class SpecGuard {
 public:
  explicit SpecGuard(const std::string& spec) { SetSpec(spec); }
  ~SpecGuard() { Clear(); }
};

TEST(FaultPoint, DisabledByDefaultAndRecordsNothing) {
  Clear();
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(ShouldFail("ridge.solve"));
  EXPECT_FALSE(ShouldFail("ridge.solve"));
  // The zero-cost path must not count hits.
  EXPECT_EQ(HitCount("ridge.solve"), 0);
}

TEST(FaultPoint, FiresOnExactlyTheNthHit) {
  SpecGuard guard("ridge.solve:3");
  EXPECT_TRUE(Enabled());
  EXPECT_FALSE(ShouldFail("ridge.solve"));  // hit 1
  EXPECT_FALSE(ShouldFail("ridge.solve"));  // hit 2
  EXPECT_TRUE(ShouldFail("ridge.solve"));   // hit 3: fires
  EXPECT_FALSE(ShouldFail("ridge.solve"));  // hit 4: one-shot rule
  EXPECT_EQ(HitCount("ridge.solve"), 4);
}

TEST(FaultPoint, PlusSuffixFiresOnEveryHitFromN) {
  SpecGuard guard("trainer.step:2+");
  EXPECT_FALSE(ShouldFail("trainer.step"));
  EXPECT_TRUE(ShouldFail("trainer.step"));
  EXPECT_TRUE(ShouldFail("trainer.step"));
  EXPECT_TRUE(ShouldFail("trainer.step"));
}

TEST(FaultPoint, OtherPointsAreUnaffected) {
  SpecGuard guard("ridge.solve:1");
  EXPECT_FALSE(ShouldFail("smote.generate"));
  EXPECT_TRUE(ShouldFail("ridge.solve"));
  EXPECT_FALSE(ShouldFail("smote.generate"));
}

TEST(FaultPoint, MultipleRulesAreIndependent) {
  SpecGuard guard("ridge.solve:1,smote.generate:2");
  EXPECT_TRUE(ShouldFail("ridge.solve"));
  EXPECT_FALSE(ShouldFail("smote.generate"));
  EXPECT_TRUE(ShouldFail("smote.generate"));
}

TEST(FaultPoint, DomainSubstringRestrictsRule) {
  SpecGuard guard("ridge.solve@smote:1");
  {
    ScopedDomain domain("cell/toy/run0/baseline");
    EXPECT_FALSE(ShouldFail("ridge.solve"));
  }
  {
    ScopedDomain domain("cell/toy/run0/smote");
    EXPECT_TRUE(ShouldFail("ridge.solve"));
  }
}

TEST(FaultPoint, HitsAreCountedPerDomain) {
  // Per-(rule, domain) counters: each domain gets its own 2nd hit, so
  // which cell a worker happens to run never shifts another cell's count.
  SpecGuard guard("ridge.solve:2");
  {
    ScopedDomain domain("cell/a");
    EXPECT_FALSE(ShouldFail("ridge.solve"));  // a: hit 1
  }
  {
    ScopedDomain domain("cell/b");
    EXPECT_FALSE(ShouldFail("ridge.solve"));  // b: hit 1
    EXPECT_TRUE(ShouldFail("ridge.solve"));   // b: hit 2 fires
  }
  {
    ScopedDomain domain("cell/a");
    EXPECT_TRUE(ShouldFail("ridge.solve"));  // a: hit 2 fires independently
  }
}

TEST(FaultPoint, ScopedDomainNestsAndRestores) {
  Clear();
  EXPECT_EQ(CurrentDomain(), "");
  {
    ScopedDomain outer("outer");
    EXPECT_EQ(CurrentDomain(), "outer");
    {
      ScopedDomain inner("inner");
      EXPECT_EQ(CurrentDomain(), "inner");
    }
    EXPECT_EQ(CurrentDomain(), "outer");
  }
  EXPECT_EQ(CurrentDomain(), "");
}

TEST(FaultPoint, SetSpecResetsCounters) {
  SetSpec("ridge.solve:2");
  EXPECT_FALSE(ShouldFail("ridge.solve"));  // hit 1
  SetSpec("ridge.solve:2");                 // reset
  EXPECT_FALSE(ShouldFail("ridge.solve"));  // hit 1 again
  EXPECT_TRUE(ShouldFail("ridge.solve"));   // hit 2
  Clear();
}

TEST(FaultPoint, MalformedRulesAreSkippedNotFatal) {
  // A typo in TSAUG_FAULTS must not abort the run it was meant to probe:
  // bad rules are skipped with a warning, good ones still apply.
  SpecGuard guard("nonsense,also:bad:,ridge.solve:1,:,x:0,y:-1");
  EXPECT_TRUE(Enabled());
  EXPECT_TRUE(ShouldFail("ridge.solve"));
  EXPECT_FALSE(ShouldFail("x"));
  EXPECT_FALSE(ShouldFail("y"));
}

TEST(FaultPoint, AllMalformedSpecDisables) {
  SetSpec("nonsense");
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(ShouldFail("nonsense"));
  Clear();
}

TEST(FaultPoint, ClearDisables) {
  SetSpec("ridge.solve:1");
  EXPECT_TRUE(Enabled());
  Clear();
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(ShouldFail("ridge.solve"));
}

TEST(FaultPoint, InjectedAtReportsPointAndDomain) {
  Clear();
  ScopedDomain domain("cell/toy/run1/smote");
  const Status status = InjectedAt("ridge.solve");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInjectedFault);
  EXPECT_NE(status.context().find("ridge.solve"), std::string::npos);
  EXPECT_NE(status.context().find("cell/toy/run1/smote"), std::string::npos);
}

}  // namespace
}  // namespace tsaug::core::fault
