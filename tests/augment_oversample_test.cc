// Tests for the oversampling branch (SMOTE family) and the balancing
// protocol of the paper.
#include <cmath>

#include <gtest/gtest.h>

#include "augment/noise.h"
#include "augment/oversample.h"
#include "core/stats.h"
#include "data/synthetic.h"
#include "linalg/distance.h"
#include "linalg/matrix.h"

namespace tsaug::augment {
namespace {

core::Dataset ImbalancedData(std::uint64_t seed = 1) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.train_counts = {16, 6, 4};
  spec.test_counts = {2, 2, 2};
  spec.num_channels = 2;
  spec.length = 30;
  spec.seed = seed;
  return data::MakeSynthetic(spec).train;
}

TEST(Smote, GeneratesRequestedCount) {
  core::Dataset train = ImbalancedData();
  Smote smote;
  core::Rng rng(2);
  const auto generated = smote.Generate(train, 2, 7, rng);
  EXPECT_EQ(generated.size(), 7u);
  for (const core::TimeSeries& s : generated) {
    EXPECT_EQ(s.num_channels(), 2);
    EXPECT_EQ(s.length(), 30);
  }
}

TEST(Smote, SyntheticPointsOnSegmentsBetweenClassMembers) {
  // With exactly 2 members, every SMOTE sample lies on the segment between
  // them: distance(a, s) + distance(s, b) == distance(a, b).
  core::Dataset train;
  train.Add(core::TimeSeries::FromChannels({{0, 0, 0, 0}}), 0);
  train.Add(core::TimeSeries::FromChannels({{4, 4, 4, 4}}), 0);
  train.Add(core::TimeSeries::FromChannels({{9, 9, 9, 9}}), 1);
  train.Add(core::TimeSeries::FromChannels({{9, 9, 9, 8}}), 1);
  train.Add(core::TimeSeries::FromChannels({{9, 9, 8, 9}}), 1);

  Smote smote;
  core::Rng rng(3);
  for (const core::TimeSeries& s : smote.Generate(train, 0, 20, rng)) {
    const double a = linalg::EuclideanDistance(s, train.series(0));
    const double b = linalg::EuclideanDistance(s, train.series(1));
    const double ab =
        linalg::EuclideanDistance(train.series(0), train.series(1));
    EXPECT_NEAR(a + b, ab, 1e-9);
  }
}

TEST(Smote, SingletonClassJitterResamples) {
  // A singleton class cannot interpolate; exact duplicates would add no
  // variance (and make downstream covariance solves singular), so the lone
  // member is jitter-resampled: close to the seed but never identical.
  core::Dataset train;
  train.Add(core::TimeSeries::FromChannels({{1, 2, 3}}), 0);
  train.Add(core::TimeSeries::FromChannels({{5, 5, 5}}), 1);
  train.Add(core::TimeSeries::FromChannels({{6, 6, 6}}), 1);
  Smote smote;
  core::Rng rng(4);
  const auto generated = smote.Generate(train, 0, 3, rng);
  ASSERT_EQ(generated.size(), 3u);
  const double scale = linalg::Norm(train.series(0).Flatten());
  for (const core::TimeSeries& s : generated) {
    const double d = linalg::EuclideanDistance(s, train.series(0));
    EXPECT_GT(d, 0.0);          // not a duplicate...
    EXPECT_LT(d, 0.5 * scale);  // ...but still close to the seed
  }
}

TEST(Smote, UsesPaperNeighborRule) {
  // k = min(5, class_size - 1): with 3 members, synthetic samples only mix
  // pairs, never leave the convex hull of the class.
  core::Dataset train;
  train.Add(core::TimeSeries::FromChannels({{0.0, 0.0}}), 0);
  train.Add(core::TimeSeries::FromChannels({{1.0, 0.0}}), 0);
  train.Add(core::TimeSeries::FromChannels({{0.0, 1.0}}), 0);
  train.Add(core::TimeSeries::FromChannels({{10.0, 10.0}}), 1);
  Smote smote(5);
  core::Rng rng(5);
  for (const core::TimeSeries& s : smote.Generate(train, 0, 30, rng)) {
    EXPECT_LE(s.at(0, 0), 1.0 + 1e-9);
    EXPECT_LE(s.at(0, 1), 1.0 + 1e-9);
    EXPECT_GE(s.at(0, 0), -1e-9);
    EXPECT_GE(s.at(0, 1), -1e-9);
  }
}

TEST(BorderlineSmote, GeneratesFromDangerRegion) {
  core::Dataset train = ImbalancedData(7);
  BorderlineSmote borderline;
  core::Rng rng(8);
  const auto generated = borderline.Generate(train, 2, 10, rng);
  EXPECT_EQ(generated.size(), 10u);
}

TEST(Adasyn, GeneratesRequestedCount) {
  core::Dataset train = ImbalancedData(9);
  Adasyn adasyn;
  core::Rng rng(10);
  EXPECT_EQ(adasyn.Generate(train, 1, 12, rng).size(), 12u);
}

TEST(RandomInterpolation, StaysWithinClassHullCoordinatewiseForPairs) {
  core::Dataset train;
  train.Add(core::TimeSeries::FromChannels({{0, 0}}), 0);
  train.Add(core::TimeSeries::FromChannels({{2, 2}}), 0);
  train.Add(core::TimeSeries::FromChannels({{5, 5}}), 1);
  RandomInterpolation interp;
  core::Rng rng(11);
  for (const core::TimeSeries& s : interp.Generate(train, 0, 20, rng)) {
    EXPECT_GE(s.at(0, 0), -1e-9);
    EXPECT_LE(s.at(0, 0), 2.0 + 1e-9);
  }
}

TEST(RandomOversampling, DuplicatesClassMembers) {
  core::Dataset train = ImbalancedData(12);
  RandomOversampling ros;
  core::Rng rng(13);
  for (const core::TimeSeries& s : ros.Generate(train, 1, 5, rng)) {
    bool found = false;
    for (int i = 0; i < train.size(); ++i) {
      if (train.label(i) == 1 && train.series(i) == s) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(BalanceWithAugmenter, PerfectlyBalances) {
  core::Dataset train = ImbalancedData(14);
  Smote smote;
  core::Rng rng(15);
  const core::Dataset balanced = BalanceWithAugmenter(train, smote, rng);
  const std::vector<int> counts = balanced.ClassCounts();
  EXPECT_EQ(counts, (std::vector<int>{16, 16, 16}));
  EXPECT_DOUBLE_EQ(core::ImbalanceDegree(balanced), 0.0);
  // Originals retained verbatim.
  for (int i = 0; i < train.size(); ++i) {
    EXPECT_EQ(balanced.series(i), train.series(i));
    EXPECT_EQ(balanced.label(i), train.label(i));
  }
}

TEST(BalanceWithAugmenter, NoopOnBalancedData) {
  core::Dataset train;
  for (int i = 0; i < 4; ++i) {
    train.Add(core::TimeSeries::FromChannels({{1.0 * i, 2.0}}), i % 2);
  }
  NoiseInjection noise(1.0);
  core::Rng rng(16);
  EXPECT_EQ(BalanceWithAugmenter(train, noise, rng).size(), 4);
}

TEST(ExpandWithAugmenter, AddsFactorTimesCounts) {
  core::Dataset train = ImbalancedData(17);
  NoiseInjection noise(1.0);
  core::Rng rng(18);
  const core::Dataset expanded = ExpandWithAugmenter(train, noise, 1.0, rng);
  EXPECT_EQ(expanded.size(), 2 * train.size());
  EXPECT_EQ(expanded.ClassCounts(), (std::vector<int>{32, 12, 8}));
}

}  // namespace
}  // namespace tsaug::augment
