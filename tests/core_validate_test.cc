#include "core/validate.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/time_series.h"

namespace tsaug::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// A small healthy 2-class, 2-channel, length-4 dataset.
Dataset Healthy() {
  Dataset d(2);
  d.Add(TimeSeries::FromChannels({{0, 1, 2, 3}, {1, 0, 1, 0}}), 0);
  d.Add(TimeSeries::FromChannels({{1, 2, 3, 4}, {0, 1, 0, 1}}), 0);
  d.Add(TimeSeries::FromChannels({{3, 2, 1, 0}, {1, 1, 0, 0}}), 1);
  d.Add(TimeSeries::FromChannels({{4, 3, 2, 1}, {0, 0, 1, 1}}), 1);
  return d;
}

bool DatasetsBitIdentical(const Dataset& a, const Dataset& b) {
  if (a.size() != b.size() || a.num_classes() != b.num_classes()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (a.label(i) != b.label(i)) return false;
    const auto& av = a.series(i).values();
    const auto& bv = b.series(i).values();
    if (av.size() != bv.size()) return false;
    if (a.series(i).num_channels() != b.series(i).num_channels()) return false;
    for (size_t v = 0; v < av.size(); ++v) {
      if (std::memcmp(&av[v], &bv[v], sizeof(double)) != 0) return false;
    }
  }
  return true;
}

TEST(ValidateDataset, HealthyDatasetHasNoFindings) {
  const ValidationReport report = ValidateDataset(Healthy());
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.HasFatal());
  EXPECT_FALSE(report.NeedsRepair());
  EXPECT_EQ(report.Summary(), "ok");
  EXPECT_TRUE(report.FirstFatal().ok());
}

TEST(ValidateDataset, EmptyDatasetIsFatal) {
  const ValidationReport report = ValidateDataset(Dataset(2));
  EXPECT_TRUE(report.HasFatal());
  EXPECT_EQ(report.FirstFatal().code(), StatusCode::kDegenerateInput);
}

TEST(ValidateDataset, InconsistentChannelsAreFatal) {
  Dataset d(2);
  d.Add(TimeSeries::FromChannels({{0, 1}, {1, 0}}), 0);
  d.Add(TimeSeries::FromValues({0, 1}), 1);  // 1 channel vs 2
  EXPECT_FALSE(ChannelsConsistent(d));
  const ValidationReport report = ValidateDataset(d);
  EXPECT_TRUE(report.HasFatal());
  EXPECT_EQ(report.FirstFatal().code(), StatusCode::kGeometryMismatch);
}

TEST(ValidateDataset, EveryValueMissingIsFatalAllMissing) {
  Dataset d(2);
  d.Add(TimeSeries::FromChannels({{kNan, kNan}, {kNan, kNan}}), 0);
  d.Add(TimeSeries::FromChannels({{kNan, kNan}, {kNan, kNan}}), 1);
  const ValidationReport report = ValidateDataset(d);
  EXPECT_TRUE(report.HasFatal());
  EXPECT_EQ(report.FirstFatal().code(), StatusCode::kAllMissing);
  EXPECT_TRUE(IsDegenerateInput(report.FirstFatal().code()));
}

TEST(ValidateDataset, EntirelyBelowLengthFloorIsFatal) {
  Dataset d(2);
  d.Add(TimeSeries::FromValues({1.0}), 0);
  d.Add(TimeSeries::FromValues({2.0}), 1);
  const ValidationReport report = ValidateDataset(d);
  EXPECT_TRUE(report.HasFatal());
  EXPECT_EQ(report.FirstFatal().code(), StatusCode::kDegenerateInput);
}

TEST(ValidateDataset, ShortSeriesAmongLongerOnesIsRepairable) {
  Dataset d = Healthy();
  d.Add(TimeSeries::FromChannels({{7.0}, {8.0}}), 0);
  const ValidationReport report = ValidateDataset(d);
  EXPECT_FALSE(report.HasFatal());
  EXPECT_TRUE(report.NeedsRepair());
}

TEST(ValidateDataset, DeadChannelIsRepairableUnlessAllDead) {
  Dataset d(2);
  d.Add(TimeSeries::FromChannels({{kNan, kNan}, {1, 2}}), 0);
  d.Add(TimeSeries::FromChannels({{kNan, kNan}, {2, 3}}), 1);
  const ValidationReport report = ValidateDataset(d);
  EXPECT_FALSE(report.HasFatal());
  EXPECT_TRUE(report.NeedsRepair());
}

TEST(ValidateDataset, EmptyClassSeverityFollowsOptions) {
  Dataset d(3);  // class 2 stays empty
  d.Add(TimeSeries::FromValues({0, 1, 2}), 0);
  d.Add(TimeSeries::FromValues({1, 2, 3}), 1);

  const ValidationReport tolerant = ValidateDataset(d);
  EXPECT_FALSE(tolerant.HasFatal());
  bool found_note = false;
  for (const Diagnosis& finding : tolerant.findings) {
    if (finding.status.code() == StatusCode::kEmptyClass) {
      EXPECT_EQ(finding.severity, Severity::kNote);
      found_note = true;
    }
  }
  EXPECT_TRUE(found_note);

  ValidateOptions strict;
  strict.require_nonempty_classes = true;
  const ValidationReport fatal = ValidateDataset(d, strict);
  EXPECT_TRUE(fatal.HasFatal());
  EXPECT_EQ(fatal.FirstFatal().code(), StatusCode::kEmptyClass);
}

TEST(ValidateDataset, SingletonClassAndConstantChannelAreNotes) {
  Dataset d(2);
  d.Add(TimeSeries::FromChannels({{5, 5, 5}, {0, 1, 2}}), 0);
  d.Add(TimeSeries::FromChannels({{5, 5, 5}, {1, 2, 3}}), 0);
  d.Add(TimeSeries::FromChannels({{5, 5, 5}, {2, 3, 4}}), 1);
  const ValidationReport report = ValidateDataset(d);
  EXPECT_FALSE(report.HasFatal());
  EXPECT_FALSE(report.NeedsRepair());
  EXPECT_FALSE(report.ok());  // notes recorded, nothing blocking
}

TEST(TryRepairTrainTest, HealthyPairComesBackBitIdentical) {
  const Dataset train = Healthy();
  const Dataset test = Healthy();
  const StatusOr<RepairOutcome> repaired =
      TryRepairTrainTest(train, test, ValidateOptions{}, 7);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->repaired);
  EXPECT_EQ(repaired->dropped_channels, 0);
  EXPECT_EQ(repaired->imputed_channels, 0);
  EXPECT_EQ(repaired->resampled_series, 0);
  EXPECT_TRUE(DatasetsBitIdentical(repaired->train, train));
  EXPECT_TRUE(DatasetsBitIdentical(repaired->test, test));
}

TEST(TryRepairTrainTest, FatalTrainSurfacesTypedWithContext) {
  const StatusOr<RepairOutcome> repaired =
      TryRepairTrainTest(Dataset(2), Healthy(), ValidateOptions{}, 7);
  ASSERT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status().code(), StatusCode::kDegenerateInput);
  EXPECT_NE(repaired.status().ToString().find("repair(train)"),
            std::string::npos);
}

TEST(TryRepairTrainTest, FatalTestSurfacesTypedWithContext) {
  const StatusOr<RepairOutcome> repaired =
      TryRepairTrainTest(Healthy(), Dataset(2), ValidateOptions{}, 7);
  ASSERT_FALSE(repaired.ok());
  EXPECT_NE(repaired.status().ToString().find("repair(test)"),
            std::string::npos);
}

TEST(TryRepairTrainTest, DropsTrainDeadChannelFromBothSplits) {
  Dataset train(2);
  train.Add(TimeSeries::FromChannels({{kNan, kNan}, {1, 2}}), 0);
  train.Add(TimeSeries::FromChannels({{kNan, kNan}, {2, 3}}), 1);
  Dataset test(2);
  // The channel is alive in test — it is still dropped: the model never
  // observed it in training.
  test.Add(TimeSeries::FromChannels({{9, 9}, {1, 2}}), 0);
  test.Add(TimeSeries::FromChannels({{9, 9}, {2, 3}}), 1);

  const StatusOr<RepairOutcome> repaired =
      TryRepairTrainTest(train, test, ValidateOptions{}, 7);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->repaired);
  EXPECT_EQ(repaired->dropped_channels, 1);
  ASSERT_EQ(repaired->train.size(), 2);
  EXPECT_EQ(repaired->train.series(0).num_channels(), 1);
  EXPECT_EQ(repaired->test.series(0).num_channels(), 1);
  // The surviving channel is the original channel 1, untouched.
  EXPECT_DOUBLE_EQ(repaired->train.series(0).at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(repaired->test.series(1).at(0, 1), 3.0);
}

TEST(TryRepairTrainTest, ImputesPerInstanceDeadChannelToTrainMean) {
  Dataset train(2);
  train.Add(TimeSeries::FromChannels({{kNan, kNan}, {1, 2}}), 0);
  train.Add(TimeSeries::FromChannels({{10, 10}, {2, 3}}), 1);
  const Dataset test = train;

  const StatusOr<RepairOutcome> repaired =
      TryRepairTrainTest(train, test, ValidateOptions{}, 7);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->repaired);
  EXPECT_EQ(repaired->dropped_channels, 0);
  EXPECT_EQ(repaired->imputed_channels, 2);  // train instance + test copy
  // Channel 0 is observed only as 10.0, so the imputed values anchor
  // there, with jitter far below signal scale.
  for (int t = 0; t < 2; ++t) {
    EXPECT_NEAR(repaired->train.series(0).at(0, t), 10.0, 0.05);
    EXPECT_FALSE(std::isnan(repaired->test.series(0).at(0, t)));
  }
  // The imputed channel must not come back exactly constant.
  EXPECT_NE(repaired->train.series(0).at(0, 0),
            repaired->train.series(0).at(0, 1));
}

TEST(TryRepairTrainTest, ResamplesBelowFloorSeries) {
  Dataset train = Healthy();
  train.Add(TimeSeries::FromChannels({{7.0}, {8.0}}), 0);
  const StatusOr<RepairOutcome> repaired =
      TryRepairTrainTest(train, Healthy(), ValidateOptions{}, 7);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->repaired);
  EXPECT_EQ(repaired->resampled_series, 1);
  EXPECT_EQ(repaired->train.series(4).length(), 2);
  EXPECT_DOUBLE_EQ(repaired->train.series(4).at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(repaired->train.series(4).at(0, 1), 7.0);
}

TEST(TryRepairTrainTest, DeterministicInSeedAcrossCalls) {
  Dataset train(2);
  train.Add(TimeSeries::FromChannels({{kNan, kNan}, {1, 2}}), 0);
  train.Add(TimeSeries::FromChannels({{10, 10}, {2, 3}}), 1);
  const Dataset test = train;

  const StatusOr<RepairOutcome> a =
      TryRepairTrainTest(train, test, ValidateOptions{}, 42);
  const StatusOr<RepairOutcome> b =
      TryRepairTrainTest(train, test, ValidateOptions{}, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(DatasetsBitIdentical(a->train, b->train));
  EXPECT_TRUE(DatasetsBitIdentical(a->test, b->test));

  // A different seed draws different jitter for the imputed channel.
  const StatusOr<RepairOutcome> c =
      TryRepairTrainTest(train, test, ValidateOptions{}, 43);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(DatasetsBitIdentical(a->train, c->train));
}

}  // namespace
}  // namespace tsaug::core
