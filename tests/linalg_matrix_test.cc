#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace tsaug::linalg {
namespace {

TEST(Matrix, IdentityDiagonal) {
  Matrix id = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, FromRowsAndAccess) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_EQ(m.Row(0), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(m.Col(1), (std::vector<double>{2, 5}));
}

TEST(Matrix, TransposedInvolution) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_DOUBLE_EQ(t(0, 2), 5.0);
  EXPECT_EQ(t.Transposed(), m);
}

TEST(MatMul, KnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatMul, TransposeVariantsAgreeWithExplicitTranspose) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix b = Matrix::FromRows({{1, 0}, {2, 1}, {0, 3}});
  EXPECT_EQ(MatMulTransposeA(a, MatMul(a, b)),
            MatMul(a.Transposed(), MatMul(a, b)));
  EXPECT_EQ(MatMulTransposeB(a, b.Transposed()), MatMul(a, b));
}

TEST(MatVec, MatchesMatMul) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> x = {1, -1};
  EXPECT_EQ(MatVec(a, x), (std::vector<double>{-1, -1, -1}));
}

TEST(Matrix, ArithmeticHelpers) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  EXPECT_EQ(Add(a, b), Matrix::FromRows({{5, 5}, {5, 5}}));
  EXPECT_EQ(Sub(a, b), Matrix::FromRows({{-3, -1}, {1, 3}}));
  EXPECT_EQ(Scale(a, 2.0), Matrix::FromRows({{2, 4}, {6, 8}}));
  Matrix c = a;
  AddDiagonal(c, 10.0);
  EXPECT_DOUBLE_EQ(c(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 14.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
}

TEST(Matrix, ColMeansAndCentering) {
  Matrix m = Matrix::FromRows({{1, 10}, {3, 30}});
  const std::vector<double> means = m.ColMeans();
  EXPECT_EQ(means, (std::vector<double>{2, 20}));
  m.CenterColumns(means);
  EXPECT_EQ(m, Matrix::FromRows({{-1, -10}, {1, 10}}));
}

TEST(Matrix, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1.5, 1}});
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 1.0);
}

}  // namespace
}  // namespace tsaug::linalg
