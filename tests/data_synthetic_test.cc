#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/stats.h"
#include "data/uea_catalog.h"

namespace tsaug::data {
namespace {

SyntheticSpec ToySpec() {
  SyntheticSpec spec;
  spec.num_classes = 3;
  spec.train_counts = {12, 6, 4};
  spec.test_counts = {6, 3, 2};
  spec.num_channels = 2;
  spec.length = 40;
  spec.seed = 7;
  return spec;
}

TEST(MakeSynthetic, ShapesMatchSpec) {
  const TrainTest data = MakeSynthetic(ToySpec());
  EXPECT_EQ(data.train.size(), 22);
  EXPECT_EQ(data.test.size(), 11);
  EXPECT_EQ(data.train.num_classes(), 3);
  EXPECT_EQ(data.train.num_channels(), 2);
  EXPECT_EQ(data.train.max_length(), 40);
  EXPECT_EQ(data.train.ClassCounts(), (std::vector<int>{12, 6, 4}));
}

TEST(MakeSynthetic, DeterministicInSeed) {
  const TrainTest a = MakeSynthetic(ToySpec());
  const TrainTest b = MakeSynthetic(ToySpec());
  EXPECT_EQ(a.train.series(0), b.train.series(0));
  EXPECT_EQ(a.test.series(5), b.test.series(5));
}

TEST(MakeSynthetic, DifferentSeedsDiffer) {
  SyntheticSpec other = ToySpec();
  other.seed = 8;
  const TrainTest a = MakeSynthetic(ToySpec());
  const TrainTest b = MakeSynthetic(other);
  EXPECT_NE(a.train.series(0), b.train.series(0));
}

TEST(MakeSynthetic, ClassesAreSeparable) {
  // Instances should be closer (on average) to their own class mean than
  // to other class means; otherwise the classification tables are noise.
  SyntheticSpec spec = ToySpec();
  spec.train_counts = {20, 20, 20};
  spec.test_counts = {2, 2, 2};
  spec.noise_level = 0.3;
  const TrainTest data = MakeSynthetic(spec);

  const auto by_class = data.train.IndicesByClass();
  std::vector<std::vector<double>> means(3);
  for (int k = 0; k < 3; ++k) {
    means[static_cast<size_t>(k)].assign(data.train.series(0).values().size(), 0.0);
    for (int i : by_class[static_cast<size_t>(k)]) {
      const auto& values = data.train.series(i).values();
      for (size_t d = 0; d < values.size(); ++d) {
        means[static_cast<size_t>(k)][d] += values[d] / static_cast<double>(by_class[static_cast<size_t>(k)].size());
      }
    }
  }
  int own_closer = 0;
  int total = 0;
  for (int i = 0; i < data.train.size(); ++i) {
    const auto& values = data.train.series(i).values();
    double best = 1e300;
    int best_class = -1;
    for (int k = 0; k < 3; ++k) {
      double dist = 0.0;
      for (size_t d = 0; d < values.size(); ++d) {
        const double diff = values[d] - means[static_cast<size_t>(k)][d];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_class = k;
      }
    }
    own_closer += best_class == data.train.label(i) ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(own_closer) / total, 0.9);
}

TEST(MakeSynthetic, MissingProportionApproximatelyMet) {
  SyntheticSpec spec = ToySpec();
  spec.missing_prop = 0.3;
  const TrainTest data = MakeSynthetic(spec);
  const double measured =
      core::MissingProportion(data.train, data.test);
  EXPECT_NEAR(measured, 0.3, 0.08);
}

TEST(MakeSynthetic, DriftShiftsTestMean) {
  SyntheticSpec spec = ToySpec();
  spec.drift = 0.0;
  const double base = core::TrainTestDistance(MakeSynthetic(spec).train,
                                              MakeSynthetic(spec).test);
  spec.drift = 2.0;
  const TrainTest shifted = MakeSynthetic(spec);
  EXPECT_GT(core::TrainTestDistance(shifted.train, shifted.test), base);
}

TEST(GeometricCounts, BalancedWhenRatioOne) {
  EXPECT_EQ(GeometricCounts(30, 3, 1.0), (std::vector<int>{10, 10, 10}));
}

TEST(GeometricCounts, DecreasingAndBounded) {
  const std::vector<int> counts = GeometricCounts(100, 4, 2.0);
  int total = 0;
  for (size_t k = 1; k < counts.size(); ++k) {
    EXPECT_LE(counts[k], counts[k - 1]);
    EXPECT_GE(counts[k], 2);
  }
  for (int c : counts) total += c;
  EXPECT_NEAR(total, 100, 4);
}

TEST(CountsForImbalanceDegree, HitsTargetApproximately) {
  const std::vector<int> counts = CountsForImbalanceDegree(200, 4, 2.0);
  EXPECT_NEAR(core::ImbalanceDegree(counts), 2.0, 0.35);
}

TEST(CountsForImbalanceDegree, ZeroTargetIsBalanced) {
  const std::vector<int> counts = CountsForImbalanceDegree(40, 4, 0.0);
  EXPECT_DOUBLE_EQ(core::ImbalanceDegree(counts), 0.0);
}

TEST(UeaCatalog, HasThirteenDatasets) {
  EXPECT_EQ(UeaImbalancedCatalog().size(), 13u);
}

TEST(UeaCatalog, FindByName) {
  const UeaDatasetInfo& info = FindUeaDataset("Heartbeat");
  EXPECT_EQ(info.n_classes, 2);
  EXPECT_EQ(info.dim, 61);
  EXPECT_EQ(info.length, 405);
}

TEST(UeaCatalog, TinyScaleCapsGeometry) {
  const TrainTest data = MakeUeaLikeDataset("PEMS-SF", ScalePreset::kTiny, 1);
  EXPECT_LE(data.train.num_channels(), 4);
  EXPECT_LE(data.train.max_length(), 32);
  EXPECT_EQ(data.train.num_classes(), 7);
  EXPECT_GE(data.train.size(), 3 * 7);
}

TEST(UeaCatalog, SmallScalePreservesImbalanceOrdering) {
  // CharacterTrajectories (ID 13.06) must stay far more imbalanced than
  // RacketSports (ID 1.06) after downscaling.
  const TrainTest ct =
      MakeUeaLikeDataset("CharacterTrajectories", ScalePreset::kSmall, 1);
  const TrainTest rs =
      MakeUeaLikeDataset("RacketSports", ScalePreset::kSmall, 1);
  EXPECT_GT(core::ImbalanceDegree(ct.train), core::ImbalanceDegree(rs.train));
}

TEST(UeaCatalog, BalancedDatasetsStayBalanced) {
  const TrainTest fm =
      MakeUeaLikeDataset("FingerMovements", ScalePreset::kSmall, 3);
  EXPECT_DOUBLE_EQ(core::ImbalanceDegree(fm.train), 0.0);
}

TEST(UeaCatalog, MissingPropagatesFromCatalog) {
  const TrainTest sad =
      MakeUeaLikeDataset("SpokenArabicDigits", ScalePreset::kTiny, 5);
  EXPECT_GT(core::MissingProportion(sad.train, sad.test), 0.3);
  const TrainTest ep = MakeUeaLikeDataset("Epilepsy", ScalePreset::kTiny, 5);
  EXPECT_DOUBLE_EQ(core::MissingProportion(ep.train, ep.test), 0.0);
}

}  // namespace
}  // namespace tsaug::data
