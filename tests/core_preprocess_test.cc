#include "core/preprocess.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tsaug::core {
namespace {

TEST(ZNormalize, CentersAndScales) {
  TimeSeries s = TimeSeries::FromChannels({{2, 4, 6, 8}});
  TimeSeries z = ZNormalize(s);
  EXPECT_NEAR(z.ChannelMean(0), 0.0, 1e-12);
  EXPECT_NEAR(z.ChannelStdDev(0), 1.0, 1e-12);
}

TEST(ZNormalize, ConstantChannelOnlyCentred) {
  TimeSeries s = TimeSeries::FromChannels({{5, 5, 5}});
  TimeSeries z = ZNormalize(s);
  for (int t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(z.at(0, t), 0.0);
}

TEST(ZNormalize, PerChannelIndependent) {
  TimeSeries s = TimeSeries::FromChannels({{0, 10}, {100, 100}});
  TimeSeries z = ZNormalize(s);
  EXPECT_NEAR(z.at(0, 0), -1.0, 1e-12);
  EXPECT_NEAR(z.at(0, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(z.at(1, 0), 0.0);
}

TEST(ZNormalize, PreservesNaN) {
  TimeSeries s = TimeSeries::FromChannels({{1, std::nan(""), 3}});
  TimeSeries z = ZNormalize(s);
  EXPECT_TRUE(std::isnan(z.at(0, 1)));
  EXPECT_FALSE(std::isnan(z.at(0, 0)));
}

TEST(ImputeLinear, InteriorGapInterpolates) {
  TimeSeries s =
      TimeSeries::FromChannels({{0, std::nan(""), std::nan(""), 3}});
  TimeSeries imputed = ImputeLinear(s);
  EXPECT_DOUBLE_EQ(imputed.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(imputed.at(0, 2), 2.0);
}

TEST(ImputeLinear, LeadingAndTrailingGapsFill) {
  TimeSeries s =
      TimeSeries::FromChannels({{std::nan(""), 2, 4, std::nan("")}});
  TimeSeries imputed = ImputeLinear(s);
  EXPECT_DOUBLE_EQ(imputed.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(imputed.at(0, 3), 4.0);
}

TEST(ImputeLinear, FullyMissingChannelBecomesZero) {
  TimeSeries s = TimeSeries::FromChannels(
      {{std::nan(""), std::nan("")}, {1.0, 2.0}});
  TimeSeries imputed = ImputeLinear(s);
  EXPECT_DOUBLE_EQ(imputed.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(imputed.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(imputed.at(1, 1), 2.0);
}

TEST(ResampleToLength, IdentityWhenSameLength) {
  TimeSeries s = TimeSeries::FromChannels({{1, 2, 3}});
  EXPECT_EQ(ResampleToLength(s, 3), s);
}

TEST(ResampleToLength, UpsamplesLinearly) {
  TimeSeries s = TimeSeries::FromChannels({{0, 2}});
  TimeSeries up = ResampleToLength(s, 3);
  EXPECT_DOUBLE_EQ(up.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(up.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(up.at(0, 2), 2.0);
}

TEST(ResampleToLength, DownsamplesKeepingEndpoints) {
  TimeSeries s = TimeSeries::FromChannels({{0, 1, 2, 3, 4}});
  TimeSeries down = ResampleToLength(s, 2);
  EXPECT_DOUBLE_EQ(down.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(down.at(0, 1), 4.0);
}

TEST(ResampleToMaxLength, MakesRectangular) {
  Dataset data;
  data.Add(TimeSeries::FromChannels({{1, 2}}), 0);
  data.Add(TimeSeries::FromChannels({{1, 2, 3, 4}}), 1);
  Dataset rect = ResampleToMaxLength(data);
  EXPECT_TRUE(rect.IsRectangular());
  EXPECT_EQ(rect.max_length(), 4);
}

}  // namespace
}  // namespace tsaug::core
