#include "classify/random_forest.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace tsaug::classify {
namespace {

// A linearly separable 2-D problem.
void MakeBlobs(int n, linalg::Matrix* x, std::vector<int>* y,
               std::uint64_t seed, double separation = 3.0) {
  core::Rng rng(seed);
  *x = linalg::Matrix(n, 2);
  y->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    (*x)(i, 0) = label * separation + rng.Normal(0, 0.5);
    (*x)(i, 1) = rng.Normal(0, 0.5);
    (*y)[static_cast<size_t>(i)] = label;
  }
}

TEST(DecisionTree, FitsSeparableBlobs) {
  linalg::Matrix x;
  std::vector<int> y;
  MakeBlobs(60, &x, &y, 1);
  DecisionTree tree;
  core::Rng rng(2);
  tree.Fit(x, y, 2, {.max_depth = 6, .min_samples_leaf = 1,
                     .features_per_split = 2},
           rng);
  int correct = 0;
  for (int i = 0; i < x.rows(); ++i) {
    correct += tree.Predict(x.row_data(i)) == y[static_cast<size_t>(i)] ? 1 : 0;
  }
  EXPECT_GE(correct, 58);
}

TEST(DecisionTree, PureNodeIsLeaf) {
  linalg::Matrix x(4, 1);
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  x(3, 0) = 4;
  const std::vector<int> y = {0, 0, 0, 0};
  DecisionTree tree;
  core::Rng rng(3);
  tree.Fit(x, y, 2, {}, rng);
  EXPECT_EQ(tree.node_count(), 1);  // already pure
  EXPECT_EQ(tree.Predict(x.row_data(0)), 0);
}

TEST(DecisionTree, DepthLimitRespected) {
  // Alternating labels along one axis need depth >> 1; a depth-1 stump
  // must still return valid distributions.
  linalg::Matrix x(16, 1);
  std::vector<int> y(16);
  for (int i = 0; i < 16; ++i) {
    x(i, 0) = i;
    y[static_cast<size_t>(i)] = i % 2;
  }
  DecisionTree tree;
  core::Rng rng(4);
  tree.Fit(x, y, 2, {.max_depth = 1, .min_samples_leaf = 1,
                     .features_per_split = 1},
           rng);
  EXPECT_LE(tree.node_count(), 3);  // root + at most two leaves
  const auto& distribution = tree.PredictDistribution(x.row_data(0));
  EXPECT_NEAR(distribution[0] + distribution[1], 1.0, 1e-12);
}

TEST(RandomForest, BeatsSingleStumpOnXor) {
  // XOR-ish pattern: single shallow trees fail, a forest of deeper trees
  // succeeds.
  core::Rng rng(5);
  linalg::Matrix x(120, 2);
  std::vector<int> y(120);
  for (int i = 0; i < 120; ++i) {
    const int a = i % 2;
    const int b = (i / 2) % 2;
    x(i, 0) = a * 2.0 + rng.Normal(0, 0.3);
    x(i, 1) = b * 2.0 + rng.Normal(0, 0.3);
    y[static_cast<size_t>(i)] = a ^ b;
  }
  RandomForest::Config config;
  config.num_trees = 30;
  config.tree.max_depth = 6;
  config.tree.features_per_split = 2;
  RandomForest forest(config, 6);
  forest.Fit(x, y, 2);
  EXPECT_GE(forest.Score(x, y), 0.9);
}

TEST(RandomForest, DeterministicInSeed) {
  linalg::Matrix x;
  std::vector<int> y;
  MakeBlobs(40, &x, &y, 7);
  RandomForest a({}, 9);
  RandomForest b({}, 9);
  a.Fit(x, y, 2);
  b.Fit(x, y, 2);
  EXPECT_EQ(a.Predict(x), b.Predict(x));
}

TEST(IntervalForestClassifier, LearnsSeparableSeries) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {16, 16};
  spec.test_counts = {8, 8};
  spec.num_channels = 2;
  spec.length = 40;
  spec.class_separation = 1.4;
  spec.seed = 8;
  const data::TrainTest data = data::MakeSynthetic(spec);
  RandomForest::Config forest;
  forest.num_trees = 40;
  IntervalForestClassifier clf(16, forest, 9);
  clf.Fit(data.train);
  EXPECT_GE(clf.Score(data.test), 0.75);
  EXPECT_EQ(clf.num_features(), 16 * 2 * 3);
}

TEST(IntervalForestClassifier, MulticlassImbalancedRuns) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;
  spec.train_counts = {12, 6, 4};
  spec.test_counts = {4, 3, 3};
  spec.num_channels = 1;
  spec.length = 24;
  spec.seed = 10;
  const data::TrainTest data = data::MakeSynthetic(spec);
  IntervalForestClassifier clf(12, {}, 11);
  clf.Fit(data.train);
  const std::vector<int> predictions = clf.Predict(data.test);
  EXPECT_EQ(predictions.size(), 10u);
  for (int p : predictions) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

}  // namespace
}  // namespace tsaug::classify
