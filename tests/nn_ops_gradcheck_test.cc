// Numerical gradient checks for every autodiff op: the analytic backward of
// each op is compared against central differences on random inputs. These
// are the load-bearing tests for InceptionTime and TimeGAN correctness.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/ops.h"

namespace tsaug::nn {
namespace {

Tensor RandomTensor(const std::vector<int>& shape, core::Rng& rng,
                    double scale = 1.0) {
  Tensor t(shape);
  for (double& v : t.data()) v = rng.Normal(0.0, scale);
  return t;
}

// Checks d(loss)/d(leaf_i) for every i of every leaf against central
// differences. `build_loss` must construct the graph from the leaf tensors.
void CheckGradients(std::vector<Tensor>& leaves,
                    const std::function<Variable(std::vector<Variable>&)>& build_loss,
                    double tolerance = 1e-6) {
  // Analytic gradients.
  std::vector<Variable> vars;
  vars.reserve(leaves.size());
  for (Tensor& leaf : leaves) vars.emplace_back(leaf, /*requires_grad=*/true);
  Variable loss = build_loss(vars);
  loss.Backward();

  auto loss_value = [&]() {
    std::vector<Variable> fresh;
    fresh.reserve(leaves.size());
    for (Tensor& leaf : leaves) fresh.emplace_back(leaf, false);
    return build_loss(fresh).value().scalar();
  };

  for (size_t leaf_idx = 0; leaf_idx < leaves.size(); ++leaf_idx) {
    for (size_t i = 0; i < leaves[leaf_idx].numel(); ++i) {
      const double numeric =
          NumericalGradient(loss_value, leaves[leaf_idx], i);
      const double analytic = vars[leaf_idx].grad()[i];
      EXPECT_NEAR(analytic, numeric, tolerance)
          << "leaf " << leaf_idx << " entry " << i;
    }
  }
}

TEST(GradCheck, MatMul) {
  core::Rng rng(1);
  std::vector<Tensor> leaves = {RandomTensor({3, 4}, rng),
                                RandomTensor({4, 2}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(MatMul(v[0], v[1]));
  });
}

TEST(GradCheck, AddSubMul) {
  core::Rng rng(2);
  std::vector<Tensor> leaves = {RandomTensor({2, 3}, rng),
                                RandomTensor({2, 3}, rng),
                                RandomTensor({2, 3}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(Mul(Sub(Add(v[0], v[1]), v[2]), v[1]));
  });
}

TEST(GradCheck, AddRowBias) {
  core::Rng rng(3);
  std::vector<Tensor> leaves = {RandomTensor({4, 3}, rng),
                                RandomTensor({3}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(AddRowBias(v[0], v[1]));
  });
}

TEST(GradCheck, Activations) {
  core::Rng rng(4);
  std::vector<Tensor> leaves = {RandomTensor({3, 3}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(Sigmoid(Tanh(v[0])));
  });
  // Relu away from the kink.
  std::vector<Tensor> relu_leaves = {RandomTensor({3, 3}, rng)};
  for (double& x : relu_leaves[0].data()) {
    if (std::fabs(x) < 0.1) x += 0.5;
  }
  CheckGradients(relu_leaves, [](std::vector<Variable>& v) {
    return Mean(Relu(v[0]));
  });
}

TEST(GradCheck, ScalarOpsAndOneMinus) {
  core::Rng rng(5);
  std::vector<Tensor> leaves = {RandomTensor({2, 2}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(OneMinus(AddConst(ScaleBy(v[0], -1.5), 0.3)));
  });
}

TEST(GradCheck, SqrtExpReshape) {
  core::Rng rng(42);
  std::vector<Tensor> leaves = {RandomTensor({2, 3}, rng, 0.5)};
  // Keep sqrt inputs positive.
  for (double& v : leaves[0].data()) v = std::fabs(v) + 0.5;
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    Variable reshaped = Reshape(v[0], {3, 2});
    return Mean(Mul(Sqrt(reshaped), Exp(ScaleBy(reshaped, 0.3))));
  });
}

TEST(GradCheck, ConcatFeatures) {
  core::Rng rng(6);
  std::vector<Tensor> leaves = {RandomTensor({2, 2}, rng),
                                RandomTensor({2, 3}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(Mul(ConcatFeatures({v[0], v[1]}),
                    ConcatFeatures({v[0], v[1]})));
  });
}

TEST(GradCheck, SelectAndStackTime) {
  core::Rng rng(7);
  std::vector<Tensor> leaves = {RandomTensor({2, 4, 3}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    std::vector<Variable> steps;
    for (int t = 3; t >= 0; --t) steps.push_back(SelectTime(v[0], t));
    return Mean(Mul(StackTime(steps), StackTime(steps)));
  });
}

class Conv1dGradCheck
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Conv1dGradCheck, MatchesNumerical) {
  const auto [kernel, dilation] = GetParam();
  core::Rng rng(static_cast<size_t>(8 + kernel + dilation));
  std::vector<Tensor> leaves = {RandomTensor({2, 3, 9}, rng),
                                RandomTensor({2, 3, kernel}, rng)};
  CheckGradients(leaves, [dilation = dilation](std::vector<Variable>& v) {
    return Mean(Mul(Conv1dSame(v[0], v[1], dilation),
                    Conv1dSame(v[0], v[1], dilation)));
  }, 1e-5);
}

// Odd and even kernels (InceptionTime uses even ones), with dilation.
INSTANTIATE_TEST_SUITE_P(Kernels, Conv1dGradCheck,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{3, 1},
                                           std::tuple{4, 1}, std::tuple{5, 2},
                                           std::tuple{8, 1}, std::tuple{9, 3}));

TEST(GradCheck, AddChannelBias) {
  core::Rng rng(9);
  std::vector<Tensor> leaves = {RandomTensor({2, 3, 5}, rng),
                                RandomTensor({3}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(AddChannelBias(v[0], v[1]));
  });
}

TEST(GradCheck, MaxPool1dSame) {
  core::Rng rng(10);
  std::vector<Tensor> leaves = {RandomTensor({2, 2, 7}, rng)};
  // Ensure distinct values so the argmax is stable under perturbation.
  for (size_t i = 0; i < leaves[0].numel(); ++i) leaves[0][i] += 0.01 * static_cast<double>(i);
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(Mul(MaxPool1dSame(v[0], 3), MaxPool1dSame(v[0], 3)));
  });
}

TEST(GradCheck, GlobalAvgPool) {
  core::Rng rng(11);
  std::vector<Tensor> leaves = {RandomTensor({3, 2, 5}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    return Mean(Mul(GlobalAvgPool(v[0]), GlobalAvgPool(v[0])));
  });
}

TEST(GradCheck, ConcatChannels) {
  core::Rng rng(12);
  std::vector<Tensor> leaves = {RandomTensor({2, 2, 4}, rng),
                                RandomTensor({2, 3, 4}, rng)};
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    Variable cat = ConcatChannels({v[0], v[1]});
    return Mean(Mul(cat, cat));
  });
}

TEST(GradCheck, BatchNormTrain) {
  core::Rng rng(13);
  std::vector<Tensor> leaves = {RandomTensor({3, 2, 4}, rng),
                                RandomTensor({2}, rng, 0.5),
                                RandomTensor({2}, rng, 0.5)};
  leaves[1][0] += 1.0;  // gamma away from zero
  leaves[1][1] += 1.0;
  CheckGradients(leaves, [](std::vector<Variable>& v) {
    Variable out = BatchNormTrain(v[0], v[1], v[2], 1e-5, nullptr, nullptr);
    return Mean(Mul(out, out));
  }, 1e-5);
}

TEST(GradCheck, BatchNormInference) {
  core::Rng rng(14);
  std::vector<Tensor> leaves = {RandomTensor({2, 2, 3}, rng),
                                RandomTensor({2}, rng, 0.5),
                                RandomTensor({2}, rng, 0.5)};
  const std::vector<double> mean = {0.1, -0.2};
  const std::vector<double> var = {1.5, 0.7};
  CheckGradients(leaves, [&mean, &var](std::vector<Variable>& v) {
    Variable out = BatchNormInference(v[0], v[1], v[2], mean, var, 1e-5);
    return Mean(Mul(out, out));
  });
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  core::Rng rng(15);
  std::vector<Tensor> leaves = {RandomTensor({4, 3}, rng)};
  const std::vector<int> labels = {0, 2, 1, 2};
  CheckGradients(leaves, [&labels](std::vector<Variable>& v) {
    return SoftmaxCrossEntropy(v[0], labels);
  });
}

TEST(GradCheck, MseLoss) {
  core::Rng rng(16);
  std::vector<Tensor> leaves = {RandomTensor({3, 4}, rng)};
  const Tensor target = RandomTensor({3, 4}, rng);
  CheckGradients(leaves, [&target](std::vector<Variable>& v) {
    return MseLoss(v[0], target);
  });
}

TEST(GradCheck, BceWithLogits) {
  core::Rng rng(17);
  std::vector<Tensor> leaves = {RandomTensor({3, 3}, rng)};
  Tensor targets({3, 3});
  for (double& v : targets.data()) v = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  CheckGradients(leaves, [&targets](std::vector<Variable>& v) {
    return BceWithLogitsLoss(v[0], targets);
  });
}

TEST(GradCheck, MomentMatchLoss) {
  core::Rng rng(18);
  std::vector<Tensor> leaves = {RandomTensor({6, 3}, rng)};
  const std::vector<double> target_mean = {0.5, -0.3, 0.1};
  const std::vector<double> target_std = {1.2, 0.8, 1.0};
  CheckGradients(leaves, [&](std::vector<Variable>& v) {
    return MomentMatchLoss(v[0], target_mean, target_std);
  }, 1e-5);
}

TEST(Softmax, RowsSumToOne) {
  core::Rng rng(19);
  const Tensor logits = RandomTensor({5, 4}, rng, 3.0);
  const Tensor probs = Softmax(logits);
  for (int i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 4; ++j) {
      EXPECT_GE(probs.at(i, j), 0.0);
      sum += probs.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Tensor logits({1, 2});
  logits.at(0, 0) = 1000.0;
  logits.at(0, 1) = 999.0;
  const Tensor probs = Softmax(logits);
  EXPECT_NEAR(probs.at(0, 0) + probs.at(0, 1), 1.0, 1e-12);
  EXPECT_GT(probs.at(0, 0), probs.at(0, 1));
}

}  // namespace
}  // namespace tsaug::nn
