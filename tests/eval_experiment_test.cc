#include "eval/experiment.h"

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "augment/noise.h"
#include "augment/oversample.h"
#include "eval/report.h"

namespace tsaug::eval {
namespace {

data::TrainTest SmallData(std::uint64_t seed = 1) {
  data::SyntheticSpec spec;
  spec.num_classes = 2;
  spec.train_counts = {14, 6};
  spec.test_counts = {6, 6};
  spec.num_channels = 2;
  spec.length = 24;
  spec.class_separation = 1.4;
  spec.seed = seed;
  return data::MakeSynthetic(spec);
}

ExperimentConfig QuickConfig(ModelKind model) {
  ExperimentConfig config;
  config.model = model;
  config.runs = 1;
  config.rocket_kernels = 100;
  config.inception.num_filters = 3;
  config.inception.depth = 3;
  config.inception.kernel_sizes = {4, 8};
  config.inception.bottleneck_channels = 3;
  config.inception.ensemble_size = 1;
  config.inception.trainer.max_epochs = 8;
  config.inception.trainer.early_stopping_patience = 4;
  config.inception.trainer.learning_rate = 5e-3;
  config.seed = 5;
  return config;
}

TEST(RelativeGain, MatchesEqThree) {
  EXPECT_NEAR(RelativeGain(0.9, 0.8), 0.125, 1e-12);
  EXPECT_NEAR(RelativeGain(0.7, 0.8), -0.125, 1e-12);
  EXPECT_DOUBLE_EQ(RelativeGain(0.8, 0.8), 0.0);
}

TEST(DatasetRow, BestAndImprovement) {
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = 0.80;
  row.cells = {{"a", 0.84}, {"b", 0.78}, {"c", 0.82}};
  EXPECT_DOUBLE_EQ(row.BestAugmentedAccuracy(), 0.84);
  EXPECT_EQ(row.BestTechnique(), "a");
  EXPECT_NEAR(row.ImprovementPercent(), 5.0, 1e-9);
}

TEST(StudyResult, AverageImprovementAndCounts) {
  StudyResult study;
  DatasetRow improved;
  improved.dataset = "x";
  improved.baseline_accuracy = 0.5;
  improved.cells = {{"noise_1.0", 0.55}, {"noise_3.0", 0.45},
                    {"smote", 0.6}, {"timegan", 0.4}};
  DatasetRow degraded;
  degraded.dataset = "y";
  degraded.baseline_accuracy = 0.8;
  degraded.cells = {{"noise_1.0", 0.7}, {"noise_3.0", 0.7},
                    {"smote", 0.7}, {"timegan", 0.85}};
  study.rows = {improved, degraded};

  // Improvements: x -> (0.6-0.5)/0.5 = 20%, y -> (0.85-0.8)/0.8 = 6.25%.
  EXPECT_NEAR(study.AverageImprovement(), (20.0 + 6.25) / 2.0, 1e-9);

  const auto counts = study.ImprovementCounts();
  EXPECT_EQ(counts.at("noise"), 1);    // only x (0.55 > 0.5)
  EXPECT_EQ(counts.at("smote"), 1);    // only x
  EXPECT_EQ(counts.at("timegan"), 1);  // only y
}

TEST(RunDatasetGrid, RocketGridProducesSaneAccuracies) {
  const data::TrainTest data = SmallData();
  std::vector<std::shared_ptr<augment::Augmenter>> techniques = {
      std::make_shared<augment::NoiseInjection>(1.0),
      std::make_shared<augment::Smote>(),
  };
  const DatasetRow row =
      RunDatasetGrid("toy", data, techniques, QuickConfig(ModelKind::kRocket));
  EXPECT_EQ(row.dataset, "toy");
  EXPECT_GT(row.baseline_accuracy, 0.5);
  ASSERT_EQ(row.cells.size(), 2u);
  for (const CellResult& cell : row.cells) {
    EXPECT_GT(cell.accuracy, 0.4);
    EXPECT_LE(cell.accuracy, 1.0);
  }
}

TEST(RunDatasetGrid, InceptionGridRuns) {
  const data::TrainTest data = SmallData(2);
  std::vector<std::shared_ptr<augment::Augmenter>> techniques = {
      std::make_shared<augment::Smote>(),
  };
  const DatasetRow row = RunDatasetGrid(
      "toy", data, techniques, QuickConfig(ModelKind::kInceptionTime));
  EXPECT_GT(row.baseline_accuracy, 0.3);
  EXPECT_GT(row.cells[0].accuracy, 0.3);
}

TEST(RunDatasetGrid, DeterministicAcrossCalls) {
  const data::TrainTest data = SmallData(3);
  std::vector<std::shared_ptr<augment::Augmenter>> techniques = {
      std::make_shared<augment::NoiseInjection>(1.0),
  };
  const ExperimentConfig config = QuickConfig(ModelKind::kRocket);
  const DatasetRow a = RunDatasetGrid("toy", data, techniques, config);
  const DatasetRow b = RunDatasetGrid("toy", data, techniques, config);
  EXPECT_DOUBLE_EQ(a.baseline_accuracy, b.baseline_accuracy);
  EXPECT_DOUBLE_EQ(a.cells[0].accuracy, b.cells[0].accuracy);
}

TEST(Report, AccuracyTablePrintsAllRows) {
  StudyResult study;
  study.model = ModelKind::kRocket;
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = 0.9;
  row.cells = {{"noise_1.0", 0.91}, {"smote", 0.89}};
  study.rows = {row};

  std::ostringstream out;
  PrintAccuracyTable(study, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("toy"), std::string::npos);
  EXPECT_NE(text.find("ROCKET_noise_1.0"), std::string::npos);
  EXPECT_NE(text.find("90.00"), std::string::npos);
  EXPECT_NE(text.find("Average Improvement"), std::string::npos);
}

TEST(Report, AccuracyTableAnnotatesFailedAndRetriedCells) {
  StudyResult study;
  study.model = ModelKind::kRocket;
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = 0.9;
  row.baseline_retries = 1;
  CellResult failed("smote", 0.45);
  failed.failed_runs = 1;
  failed.last_error = core::SingularError("ridge.fit: gram not SPD");
  row.cells = {{"noise_1.0", 0.91}, failed};
  study.rows = {row};

  std::ostringstream out;
  PrintAccuracyTable(study, out);
  const std::string text = out.str();
  // Recovered-retry marker on the baseline, failure marker on the cell.
  EXPECT_NE(text.find("~"), std::string::npos);
  EXPECT_NE(text.find("!1"), std::string::npos);
  // The failure list names the cell and carries the Status.
  EXPECT_NE(text.find("Failed cells"), std::string::npos);
  EXPECT_NE(text.find("toy/smote"), std::string::npos);
  EXPECT_NE(text.find("singular: ridge.fit: gram not SPD"), std::string::npos);
}

TEST(Report, AnnotatesResumedCellsAndPrintsJournalFooter) {
  StudyResult study;
  study.model = ModelKind::kRocket;
  study.journal_path = "/tmp/grid.jsonl";
  study.resumed_cells = 3;
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = 0.9;
  row.baseline_resumed_runs = 1;
  CellResult dead("smote", std::nan(""));
  dead.failed_runs = 2;
  dead.last_error = core::DivergedError("trainer: loss diverged");
  row.cells = {{"noise_1.0", 0.91}, dead};
  row.resumed_cells = 3;
  study.rows = {row};

  std::ostringstream out;
  PrintAccuracyTable(study, out);
  const std::string text = out.str();
  // "^" marks the resumed baseline; the all-failed cell prints n/a.
  EXPECT_NE(text.find("90.00^"), std::string::npos);
  EXPECT_NE(text.find("n/a!2"), std::string::npos);
  EXPECT_NE(text.find("Journal: /tmp/grid.jsonl (3 cell(s) resumed)"),
            std::string::npos);
  EXPECT_EQ(text.find("INTERRUPTED"), std::string::npos);
}

TEST(Report, MarksInterruptedStudies) {
  StudyResult study;
  study.model = ModelKind::kRocket;
  study.interrupted = true;
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = 0.9;
  row.cells = {{"smote", 0.91}};
  row.interrupted = true;
  study.rows = {row};

  std::ostringstream out;
  PrintAccuracyTable(study, out);
  EXPECT_NE(out.str().find("INTERRUPTED"), std::string::npos);
}

TEST(DatasetRow, AggregatesSkipAllFailedNanCells) {
  const double nan = std::nan("");
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = 0.80;
  row.cells = {{"a", nan}, {"b", 0.78}, {"c", 0.82}};
  // The all-failed cell "a" is invisible to the aggregates.
  EXPECT_DOUBLE_EQ(row.BestAugmentedAccuracy(), 0.82);
  EXPECT_EQ(row.BestTechnique(), "c");
  EXPECT_NEAR(row.ImprovementPercent(), 2.5, 1e-9);
}

TEST(DatasetRow, AllCellsFailedYieldsNanNotZero) {
  const double nan = std::nan("");
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = 0.80;
  row.cells = {{"a", nan}, {"b", nan}};
  EXPECT_TRUE(std::isnan(row.BestAugmentedAccuracy()));
  EXPECT_EQ(row.BestTechnique(), "");
  EXPECT_TRUE(std::isnan(row.ImprovementPercent()));
}

TEST(DatasetRow, FailedBaselineYieldsNanImprovement) {
  DatasetRow row;
  row.dataset = "toy";
  row.baseline_accuracy = std::nan("");
  row.cells = {{"a", 0.9}};
  EXPECT_DOUBLE_EQ(row.BestAugmentedAccuracy(), 0.9);
  EXPECT_TRUE(std::isnan(row.ImprovementPercent()));
}

TEST(StudyResult, AggregatesSkipNanRowsAndKeepZeroCountFamilies) {
  const double nan = std::nan("");
  StudyResult study;
  DatasetRow good;
  good.dataset = "x";
  good.baseline_accuracy = 0.5;
  good.cells = {{"noise_1.0", 0.55}, {"smote", nan}, {"timegan", 0.4}};
  DatasetRow dead;  // baseline failed: no improvement is defined
  dead.dataset = "y";
  dead.baseline_accuracy = nan;
  dead.cells = {{"noise_1.0", 0.9}, {"smote", 0.9}, {"timegan", 0.9}};
  study.rows = {good, dead};

  // Only x contributes: (0.55-0.5)/0.5 = 10%.
  EXPECT_NEAR(study.AverageImprovement(), 10.0, 1e-9);

  const auto counts = study.ImprovementCounts();
  EXPECT_EQ(counts.at("noise"), 1);    // x only; y's baseline is NaN
  EXPECT_EQ(counts.at("smote"), 0);    // all-failed cell never "improves"
  EXPECT_EQ(counts.at("timegan"), 0);  // present with zero, not missing
}

TEST(StudyResult, AllRowsNanYieldsNanAverageImprovement) {
  StudyResult study;
  DatasetRow dead;
  dead.dataset = "x";
  dead.baseline_accuracy = std::nan("");
  dead.cells = {{"smote", 0.9}};
  study.rows = {dead};
  EXPECT_TRUE(std::isnan(study.AverageImprovement()));
}

TEST(Report, PropertiesTableMatchesTableThreeLayout) {
  core::DatasetProperties props;
  props.name = "Heartbeat";
  props.n_classes = 2;
  props.train_size = 204;
  props.dim = 61;
  props.length = 405;
  props.im_ratio = 0.3;
  std::ostringstream out;
  PrintPropertiesTable({props}, out);
  EXPECT_NE(out.str().find("Im_ratio"), std::string::npos);
  EXPECT_NE(out.str().find("Heartbeat"), std::string::npos);
}

TEST(Report, ImprovementCountsTable) {
  StudyResult rocket;
  rocket.model = ModelKind::kRocket;
  DatasetRow row;
  row.dataset = "d";
  row.baseline_accuracy = 0.5;
  row.cells = {{"noise_1.0", 0.6}, {"smote", 0.4}, {"timegan", 0.55}};
  rocket.rows = {row};
  StudyResult inception = rocket;
  inception.model = ModelKind::kInceptionTime;

  std::ostringstream out;
  PrintImprovementCounts(rocket, inception, out);
  EXPECT_NE(out.str().find("smote"), std::string::npos);
  EXPECT_NE(out.str().find("timegan"), std::string::npos);
  EXPECT_NE(out.str().find("noise"), std::string::npos);
}

TEST(BenchSettings, DefaultsAreTiny) {
  // Clear the knobs to test defaults (restore afterwards not needed in the
  // test binary).
  unsetenv("TSAUG_SCALE");
  unsetenv("TSAUG_RUNS");
  unsetenv("TSAUG_KERNELS");
  const BenchSettings settings = ReadBenchSettings();
  EXPECT_EQ(settings.scale, data::ScalePreset::kTiny);
  EXPECT_EQ(settings.runs, 2);
  EXPECT_EQ(settings.rocket_kernels, 500);
  EXPECT_TRUE(settings.datasets.empty());
}

TEST(BenchSettings, EnvOverrides) {
  setenv("TSAUG_SCALE", "paper", 1);
  setenv("TSAUG_RUNS", "3", 1);
  setenv("TSAUG_DATASETS", "Heartbeat,LSST", 1);
  const BenchSettings settings = ReadBenchSettings();
  EXPECT_EQ(settings.scale, data::ScalePreset::kPaper);
  EXPECT_EQ(settings.runs, 3);
  EXPECT_EQ(settings.rocket_kernels, 10000);
  ASSERT_EQ(settings.datasets.size(), 2u);
  EXPECT_EQ(settings.datasets[0], "Heartbeat");
  unsetenv("TSAUG_SCALE");
  unsetenv("TSAUG_RUNS");
  unsetenv("TSAUG_DATASETS");
}

TEST(MakeExperimentConfig, PaperScaleKeepsPaperArchitecture) {
  BenchSettings settings;
  settings.scale = data::ScalePreset::kPaper;
  settings.inception_epochs = 200;
  const ExperimentConfig config =
      MakeExperimentConfig(settings, ModelKind::kInceptionTime);
  EXPECT_EQ(config.inception.num_filters, 32);
  EXPECT_EQ(config.inception.depth, 6);
  EXPECT_EQ(config.inception.ensemble_size, 5);
  EXPECT_EQ(config.inception.trainer.max_epochs, 200);
  // Paper: LR finder enabled (learning_rate == 0 sentinel).
  EXPECT_DOUBLE_EQ(config.inception.trainer.learning_rate, 0.0);
}

TEST(BenchSettings, JournalAndBudgetComeFromEnvironment) {
  setenv("TSAUG_JOURNAL", "/tmp/study.jsonl", 1);
  setenv("TSAUG_CELL_BUDGET", "2.5", 1);
  const BenchSettings settings = ReadBenchSettings();
  EXPECT_EQ(settings.journal_path, "/tmp/study.jsonl");
  EXPECT_DOUBLE_EQ(settings.cell_budget_seconds, 2.5);
  unsetenv("TSAUG_JOURNAL");
  unsetenv("TSAUG_CELL_BUDGET");

  const BenchSettings defaults = ReadBenchSettings();
  EXPECT_TRUE(defaults.journal_path.empty());
  EXPECT_DOUBLE_EQ(defaults.cell_budget_seconds, 0.0);
}

TEST(ApplyGridFlags, ParsesBothSeparateAndEqualsForms) {
  BenchSettings settings;
  const char* argv_equals[] = {"bench", "--journal=/tmp/a.jsonl",
                               "--cell-budget-seconds=1.5"};
  ApplyGridFlags(3, const_cast<char**>(argv_equals), settings);
  EXPECT_EQ(settings.journal_path, "/tmp/a.jsonl");
  EXPECT_DOUBLE_EQ(settings.cell_budget_seconds, 1.5);

  const char* argv_separate[] = {"bench", "--journal", "/tmp/b.jsonl",
                                 "--cell-budget-seconds", "30"};
  ApplyGridFlags(5, const_cast<char**>(argv_separate), settings);
  EXPECT_EQ(settings.journal_path, "/tmp/b.jsonl");
  EXPECT_DOUBLE_EQ(settings.cell_budget_seconds, 30.0);

  // Flags the grid does not own are left for the caller; a trailing flag
  // with no value is ignored rather than read out of bounds.
  const char* argv_odd[] = {"bench", "--other", "--journal"};
  ApplyGridFlags(3, const_cast<char**>(argv_odd), settings);
  EXPECT_EQ(settings.journal_path, "/tmp/b.jsonl");
}

TEST(ConfigFingerprint, CoversIdentityButNotDurabilityKnobs) {
  std::vector<std::shared_ptr<augment::Augmenter>> techniques = {
      std::make_shared<augment::NoiseInjection>(1.0),
      std::make_shared<augment::Smote>(),
  };
  ExperimentConfig config = QuickConfig(ModelKind::kRocket);
  const std::string base = ConfigFingerprint(config, techniques);
  EXPECT_NE(base.find("ROCKET"), std::string::npos);
  EXPECT_NE(base.find("noise_1.0,smote"), std::string::npos);

  // Identity changes must change the fingerprint (a journal can never be
  // resumed against a different experiment)...
  ExperimentConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  EXPECT_NE(ConfigFingerprint(reseeded, techniques), base);
  ExperimentConfig rescaled = config;
  rescaled.rocket_kernels = config.rocket_kernels + 1;
  EXPECT_NE(ConfigFingerprint(rescaled, techniques), base);

  // ...while durability knobs must not: resuming with a different budget
  // or journal location is exactly the supported workflow.
  ExperimentConfig durable = config;
  durable.journal_path = "/tmp/elsewhere.jsonl";
  durable.cell_budget_seconds = 123.0;
  EXPECT_EQ(ConfigFingerprint(durable, techniques), base);
}

}  // namespace
}  // namespace tsaug::eval
