#include "eval/metrics.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace tsaug::eval {
namespace {

TEST(ConfusionMatrix, CountsCells) {
  const linalg::Matrix m = ConfusionMatrix({0, 1, 1, 0, 1}, {0, 1, 0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);  // true 0 predicted 0
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);  // true 0 predicted 1
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
}

TEST(PerClassRecall, PerfectAndZero) {
  const linalg::Matrix m = ConfusionMatrix({0, 0, 0}, {0, 0, 1}, 2);
  const std::vector<double> recall = PerClassRecall(m);
  EXPECT_DOUBLE_EQ(recall[0], 1.0);
  EXPECT_DOUBLE_EQ(recall[1], 0.0);
}

TEST(PerClassPrecision, HandlesNeverPredicted) {
  const linalg::Matrix m = ConfusionMatrix({0, 0, 0}, {0, 0, 1}, 2);
  const std::vector<double> precision = PerClassPrecision(m);
  EXPECT_DOUBLE_EQ(precision[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(precision[1], 0.0);
}

TEST(MacroF1, PerfectPredictionIsOne) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2, 1}, {0, 1, 2, 1}, 3), 1.0);
}

TEST(MacroF1, MajorityVotePenalizedOnImbalance) {
  // 9 of class 0, 1 of class 1; predicting all-0 has 90% accuracy but
  // macro F1 much lower.
  std::vector<int> labels(10, 0);
  labels[9] = 1;
  const std::vector<int> all_zero(10, 0);
  const double f1 = MacroF1(all_zero, labels, 2);
  EXPECT_LT(f1, 0.5);
  EXPECT_GT(f1, 0.4);  // (0.947 + 0) / 2
}

TEST(MacroF1, IgnoresAbsentClasses) {
  // num_classes = 5 but only classes 0 and 1 appear: absent classes must
  // not drag the average down.
  EXPECT_DOUBLE_EQ(MacroF1({0, 1}, {0, 1}, 5), 1.0);
}

TEST(BalancedAccuracy, MeanOfRecalls) {
  // Class 0: 2/2 correct; class 1: 1/2 correct -> 0.75.
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 0, 1, 0}, {0, 0, 1, 1}, 2), 0.75);
}

TEST(BalancedAccuracy, InsensitiveToClassSizes) {
  // 90/10 imbalance, both classes 50% recall -> balanced accuracy 0.5.
  std::vector<int> labels;
  std::vector<int> predicted;
  for (int i = 0; i < 90; ++i) {
    labels.push_back(0);
    predicted.push_back(i < 45 ? 0 : 1);
  }
  for (int i = 0; i < 10; ++i) {
    labels.push_back(1);
    predicted.push_back(i < 5 ? 1 : 0);
  }
  EXPECT_NEAR(BalancedAccuracy(predicted, labels, 2), 0.5, 1e-12);
}

TEST(PearsonCorrelation, PerfectLinearRelations) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSampleIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({5}, {3}), 0.0);
}

TEST(PearsonCorrelation, UncorrelatedNearZero) {
  // Orthogonal patterns.
  EXPECT_NEAR(PearsonCorrelation({1, -1, 1, -1}, {1, 1, -1, -1}), 0.0, 1e-12);
}

TEST(SpearmanCorrelation, MonotoneNonlinearIsOne) {
  // Exponential growth: Pearson < 1 but Spearman exactly 1.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 10, 100, 1000, 10000};
  EXPECT_LT(PearsonCorrelation(x, y), 0.95);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanCorrelation, HandlesTiesWithAverageRanks) {
  // Ties in x: average ranks keep the statistic defined and symmetric.
  const double rho = SpearmanCorrelation({1, 1, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(rho, 0.8);
  EXPECT_LE(rho, 1.0);
}

// Scores coming from failed cells can be NaN or infinite; the correlation
// statistics skip those pairs instead of poisoning the whole summary.
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PearsonCorrelation, SkipsNonFinitePairs) {
  // The NaN/inf pairs removed, the rest is a perfect linear relation.
  const std::vector<double> x = {1, kNan, 2, 3, kInf, 4};
  const std::vector<double> y = {2, 5, 4, 6, 7, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  // A non-finite value on either side drops the pair.
  const std::vector<double> x2 = {1, 2, 3, 4};
  const std::vector<double> y2 = {2, kNan, 6, -kInf};
  EXPECT_NEAR(PearsonCorrelation(x2, y2), 1.0, 1e-12);
}

TEST(PearsonCorrelation, AllNonFiniteIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({kNan, kNan}, {1, 2}), 0.0);
  // Fewer than two finite pairs: the statistic is undefined, report 0.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, kNan}, {1, 2}), 0.0);
}

TEST(SpearmanCorrelation, SkipsNonFinitePairs) {
  // Monotone once the poisoned pairs are gone; a NaN rank would otherwise
  // depend on comparison order.
  const std::vector<double> x = {1, kNan, 2, 3, 4};
  const std::vector<double> y = {1, 3, 10, 100, 1000};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanCorrelation, AllNonFiniteIsZero) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({kNan, kInf}, {1, 2}), 0.0);
}

}  // namespace
}  // namespace tsaug::eval
