// The observability subsystem: counters, nested scoped timers and the
// merged per-thread profile trees, enable/disable toggling, and the JSON
// exporter validated through a minimal recursive-descent parser.

#include <cctype>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/trace.h"

namespace tsaug::core {
namespace {

/// Restores the tracing toggle a test flipped.
class TraceToggleGuard {
 public:
  TraceToggleGuard() : saved_(trace::Enabled()) {}
  ~TraceToggleGuard() {
    if (saved_) {
      trace::Enable();
    } else {
      trace::Disable();
    }
  }

 private:
  bool saved_;
};

const trace::ScopeStats* FindScope(const std::vector<trace::ScopeStats>& list,
                                   const std::string& name) {
  for (const trace::ScopeStats& s : list) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// --- minimal JSON parser (round-trip check of ReportJson) -------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses the subset of JSON ReportJson emits: objects, arrays, strings
/// with \" \\ \uXXXX escapes, integers, true/false/null. No trailing text.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == '"' || esc == '\\' || esc == '/') {
          out->push_back(esc);
        } else if (esc == 'u') {
          if (pos_ + 4 > text_.size()) return false;
          const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          out->push_back(static_cast<char>(code));
        } else {
          return false;  // exporter never emits other escapes
        }
      } else {
        out->push_back(c);
      }
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ParseLiteral("null");
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const JsonValue* FindJsonScope(const JsonValue& scopes,
                               const std::string& name) {
  for (const JsonValue& s : scopes.array) {
    const JsonValue* n = s.Find("name");
    if (n != nullptr && n->str == name) return &s;
  }
  return nullptr;
}

// --- tests ------------------------------------------------------------------

TEST(TraceCounters, DisabledIsNoop) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Disable();
  trace::AddCount("trace_test.noop", 5);
  EXPECT_EQ(trace::CounterValue("trace_test.noop"), 0);
  EXPECT_EQ(trace::Counters().count("trace_test.noop"), 0u);
}

TEST(TraceCounters, AccumulateAcrossCallsAndThreads) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  trace::AddCount("trace_test.a", 2);
  trace::AddCount("trace_test.a", 3);
  trace::AddCount("trace_test.b");
  std::thread other([] { trace::AddCount("trace_test.a", 10); });
  other.join();
  EXPECT_EQ(trace::CounterValue("trace_test.a"), 15);
  EXPECT_EQ(trace::CounterValue("trace_test.b"), 1);
  EXPECT_EQ(trace::CounterValue("trace_test.never_touched"), 0);
  const auto merged = trace::Counters();
  ASSERT_NE(merged.find("trace_test.a"), merged.end());
  EXPECT_EQ(merged.at("trace_test.a"), 15);
}

TEST(TraceScopes, NestedScopesFormTree) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  {
    TSAUG_TRACE_SCOPE("outer");
    { TSAUG_TRACE_SCOPE("inner"); }
    { TSAUG_TRACE_SCOPE("inner"); }
  }
  { TSAUG_TRACE_SCOPE("other"); }

  const std::vector<trace::ScopeStats> scopes = trace::MergedScopes();
  ASSERT_EQ(scopes.size(), 2u);
  // Name-sorted at every level.
  EXPECT_EQ(scopes[0].name, "other");
  EXPECT_EQ(scopes[1].name, "outer");

  const trace::ScopeStats* outer = FindScope(scopes, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_GE(outer->total_ns, 0);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].name, "inner");
  EXPECT_EQ(outer->children[0].count, 2);
  // Strict nesting: the parent's wall time covers its children.
  EXPECT_GE(outer->total_ns, outer->children[0].total_ns);
  // "inner" only exists under "outer", never at the root.
  EXPECT_EQ(FindScope(scopes, "inner"), nullptr);
}

TEST(TraceScopes, WorkerThreadTreesMergeOnExport) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  { TSAUG_TRACE_SCOPE("trace_test.shared"); }
  std::thread worker([] { TSAUG_TRACE_SCOPE("trace_test.shared"); });
  worker.join();
  // Keep the merged tree alive past the lookup: FindScope returns a
  // pointer into this vector.
  const std::vector<trace::ScopeStats> scopes = trace::MergedScopes();
  const trace::ScopeStats* shared = FindScope(scopes, "trace_test.shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->count, 2);
}

TEST(TraceScopes, DisableStopsRecordingAndResetClears) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  { TSAUG_TRACE_SCOPE("recorded"); }
  trace::Disable();
  { TSAUG_TRACE_SCOPE("dropped"); }
  trace::AddCount("dropped_counter");

  std::vector<trace::ScopeStats> scopes = trace::MergedScopes();
  EXPECT_NE(FindScope(scopes, "recorded"), nullptr);
  EXPECT_EQ(FindScope(scopes, "dropped"), nullptr);
  EXPECT_EQ(trace::CounterValue("dropped_counter"), 0);

  trace::Reset();
  EXPECT_TRUE(trace::MergedScopes().empty());
  EXPECT_TRUE(trace::Counters().empty());
}

TEST(TraceScopes, ToggleMidScopeStillClosesCleanly) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  {
    TSAUG_TRACE_SCOPE("outer");
    trace::Disable();  // inner scopes are dropped, outer still closes
    { TSAUG_TRACE_SCOPE("inner"); }
  }
  trace::Enable();
  { TSAUG_TRACE_SCOPE("after"); }
  const std::vector<trace::ScopeStats> scopes = trace::MergedScopes();
  const trace::ScopeStats* outer = FindScope(scopes, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_TRUE(outer->children.empty());
  // "after" is a root scope, not a child of the closed "outer".
  EXPECT_NE(FindScope(scopes, "after"), nullptr);
}

TEST(TraceExport, JsonRoundTripsThroughMinimalParser) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  {
    TSAUG_TRACE_SCOPE("alpha");
    { TSAUG_TRACE_SCOPE("beta"); }
  }
  trace::AddCount("trace_test.items", 3);

  const std::string json = trace::ReportJson();
  JsonValue doc;
  MiniJsonParser parser(json);
  ASSERT_TRUE(parser.Parse(&doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);

  const JsonValue* version = doc.Find("trace_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, 1.0);
  const JsonValue* enabled = doc.Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->boolean);

  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* items = counters->Find("trace_test.items");
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(items->number, 3.0);

  const JsonValue* scopes = doc.Find("scopes");
  ASSERT_NE(scopes, nullptr);
  ASSERT_EQ(scopes->kind, JsonValue::Kind::kArray);
  const JsonValue* alpha = FindJsonScope(*scopes, "alpha");
  ASSERT_NE(alpha, nullptr) << json;
  EXPECT_EQ(alpha->Find("count")->number, 1.0);
  EXPECT_GE(alpha->Find("total_ns")->number, 0.0);
  const JsonValue* beta = FindJsonScope(*alpha->Find("children"), "beta");
  ASSERT_NE(beta, nullptr) << json;
  EXPECT_EQ(beta->Find("count")->number, 1.0);
  EXPECT_TRUE(beta->Find("children")->array.empty());
}

TEST(TraceExport, JsonEscapesQuotesInNames) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  { trace::Scope scope(std::string("odd\"name\\here")); }
  const std::string json = trace::ReportJson();
  JsonValue doc;
  MiniJsonParser parser(json);
  ASSERT_TRUE(parser.Parse(&doc)) << json;
  const JsonValue* scopes = doc.Find("scopes");
  ASSERT_NE(scopes, nullptr);
  EXPECT_NE(FindJsonScope(*scopes, "odd\"name\\here"), nullptr) << json;
}

TEST(TraceExport, TextReportListsScopesAndCounters) {
  TraceToggleGuard guard;
  trace::Reset();
  trace::Enable();
  { TSAUG_TRACE_SCOPE("text_scope"); }
  trace::AddCount("text_counter", 7);
  const std::string text = trace::ReportText();
  EXPECT_NE(text.find("text_scope"), std::string::npos) << text;
  EXPECT_NE(text.find("text_counter = 7"), std::string::npos) << text;
}

TEST(TraceClock, StopwatchAndNanosAreMonotone) {
  const std::int64_t t0 = trace::NowNanos();
  trace::Stopwatch watch;
  double x = 0.0;
  for (int i = 0; i < 1000; ++i) x += static_cast<double>(i) * 1e-3;
  ASSERT_GT(x, 0.0);  // keep the loop alive
  EXPECT_GE(watch.Seconds(), 0.0);
  EXPECT_GE(trace::NowNanos(), t0);
  watch.Restart();
  EXPECT_GE(watch.Seconds(), 0.0);
}

}  // namespace
}  // namespace tsaug::core
